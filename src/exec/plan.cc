#include "src/exec/plan.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <type_traits>

// Direct-threaded dispatch needs GNU computed goto; elsewhere the same
// handler bodies compile into a switch loop via the OP/NEXT/JUMP macros.
#if defined(__GNUC__) || defined(__clang__)
#define GERENUK_COMPUTED_GOTO 1
#endif

namespace gerenuk {

namespace {

// The hot helpers must land inside each dispatch handler: an out-of-line
// EvalBin costs a call plus a 24-byte sret round trip per binop, which alone
// erases the dispatch win (GCC at -O2 declines to inline it by size).
#if defined(__GNUC__) || defined(__clang__)
#define GERENUK_FORCE_INLINE inline __attribute__((always_inline))
#else
#define GERENUK_FORCE_INLINE inline
#endif

// The vectorized kernels want plain indexed loops the compiler can
// auto-vectorize; restrict-qualified pointers tell it the destination column
// never aliases the operand columns (the lowering guarantees distinct
// column ids).
#if defined(__GNUC__) || defined(__clang__)
#define GERENUK_RESTRICT __restrict__
#else
#define GERENUK_RESTRICT
#endif

// Exact copies of the interpreter's binop semantics, including the dynamic
// float rule (either operand kF64 promotes), the divide-by-zero checks, and
// the bitwise-on-float fatal — the differential tests depend on parity.
GERENUK_FORCE_INLINE double AsF(const Value& v) {
  return v.tag == ValueTag::kF64 ? v.d : static_cast<double>(v.i);
}

// Column lanes are raw 8-byte payloads: i64 bits for integer-tagged values,
// double bits for kF64. All column memory is accessed as int64_t; doubles
// round-trip through memcpy-based punning (compiles to a plain move, keeps
// the loops strict-aliasing clean and auto-vectorizable).
GERENUK_FORCE_INLINE int64_t F2Bits(double d) {
  int64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

GERENUK_FORCE_INLINE double BitsAsF(int64_t b) {
  double d;
  std::memcpy(&d, &b, sizeof(d));
  return d;
}

GERENUK_FORCE_INLINE Value EvalBin(BinOpKind kind, const Value& a, const Value& b) {
  bool is_float = a.tag == ValueTag::kF64 || b.tag == ValueTag::kF64;
  if (is_float) {
    double x = AsF(a);
    double y = AsF(b);
    switch (kind) {
      case BinOpKind::kAdd: return Value::F64(x + y);
      case BinOpKind::kSub: return Value::F64(x - y);
      case BinOpKind::kMul: return Value::F64(x * y);
      case BinOpKind::kDiv: return Value::F64(x / y);
      case BinOpKind::kRem: return Value::F64(std::fmod(x, y));
      case BinOpKind::kLt: return Value::Bool(x < y);
      case BinOpKind::kLe: return Value::Bool(x <= y);
      case BinOpKind::kGt: return Value::Bool(x > y);
      case BinOpKind::kGe: return Value::Bool(x >= y);
      case BinOpKind::kEq: return Value::Bool(x == y);
      case BinOpKind::kNe: return Value::Bool(x != y);
      case BinOpKind::kMin: return Value::F64(x < y ? x : y);
      case BinOpKind::kMax: return Value::F64(x > y ? x : y);
      default:
        GERENUK_CHECK(false) << "bitwise binop on floats";
    }
    return Value::None();
  }
  int64_t x = a.i;
  int64_t y = b.i;
  switch (kind) {
    case BinOpKind::kAdd: return Value::I64(x + y);
    case BinOpKind::kSub: return Value::I64(x - y);
    case BinOpKind::kMul: return Value::I64(x * y);
    case BinOpKind::kDiv:
      GERENUK_CHECK_NE(y, 0);
      return Value::I64(x / y);
    case BinOpKind::kRem:
      GERENUK_CHECK_NE(y, 0);
      return Value::I64(x % y);
    case BinOpKind::kLt: return Value::Bool(x < y);
    case BinOpKind::kLe: return Value::Bool(x <= y);
    case BinOpKind::kGt: return Value::Bool(x > y);
    case BinOpKind::kGe: return Value::Bool(x >= y);
    case BinOpKind::kEq: return Value::Bool(x == y);
    case BinOpKind::kNe: return Value::Bool(x != y);
    case BinOpKind::kAnd: return Value::I64(x & y);
    case BinOpKind::kOr: return Value::I64(x | y);
    case BinOpKind::kXor: return Value::I64(x ^ y);
    case BinOpKind::kShl: return Value::I64(x << y);
    case BinOpKind::kShr: return Value::I64(x >> y);
    case BinOpKind::kMin: return Value::I64(x < y ? x : y);
    case BinOpKind::kMax: return Value::I64(x > y ? x : y);
  }
  return Value::None();
}

inline Value LoadHeapField(Heap& heap, ObjRef obj, int64_t off, FieldKind kind) {
  switch (kind) {
    case FieldKind::kBool:
    case FieldKind::kI8: return Value::I64(heap.GetPrim<int8_t>(obj, off));
    case FieldKind::kI16:
    case FieldKind::kChar: return Value::I64(heap.GetPrim<int16_t>(obj, off));
    case FieldKind::kI32: return Value::I64(heap.GetPrim<int32_t>(obj, off));
    case FieldKind::kI64: return Value::I64(heap.GetPrim<int64_t>(obj, off));
    case FieldKind::kF32: return Value::F64(heap.GetPrim<float>(obj, off));
    case FieldKind::kF64: return Value::F64(heap.GetPrim<double>(obj, off));
    case FieldKind::kRef: return Value::Ref(static_cast<int64_t>(heap.GetRef(obj, off)));
  }
  return Value::None();
}

inline void StoreHeapField(Heap& heap, ObjRef obj, int64_t off, FieldKind kind,
                           const Value& v) {
  switch (kind) {
    case FieldKind::kBool:
    case FieldKind::kI8: heap.SetPrim<int8_t>(obj, off, static_cast<int8_t>(v.i)); break;
    case FieldKind::kI16:
    case FieldKind::kChar: heap.SetPrim<int16_t>(obj, off, static_cast<int16_t>(v.i)); break;
    case FieldKind::kI32: heap.SetPrim<int32_t>(obj, off, static_cast<int32_t>(v.i)); break;
    case FieldKind::kI64: heap.SetPrim<int64_t>(obj, off, v.i); break;
    case FieldKind::kF32: heap.SetPrim<float>(obj, off, static_cast<float>(AsF(v))); break;
    case FieldKind::kF64: heap.SetPrim<double>(obj, off, AsF(v)); break;
    case FieldKind::kRef: heap.SetRef(obj, off, static_cast<ObjRef>(v.i)); break;
  }
}

inline Value LoadHeapArray(Heap& heap, ObjRef arr, int64_t idx, FieldKind kind) {
  switch (kind) {
    case FieldKind::kBool:
    case FieldKind::kI8: return Value::I64(heap.AGet<int8_t>(arr, idx));
    case FieldKind::kI16:
    case FieldKind::kChar: return Value::I64(heap.AGet<int16_t>(arr, idx));
    case FieldKind::kI32: return Value::I64(heap.AGet<int32_t>(arr, idx));
    case FieldKind::kI64: return Value::I64(heap.AGet<int64_t>(arr, idx));
    case FieldKind::kF32: return Value::F64(heap.AGet<float>(arr, idx));
    case FieldKind::kF64: return Value::F64(heap.AGet<double>(arr, idx));
    case FieldKind::kRef: return Value::Ref(static_cast<int64_t>(heap.AGetRef(arr, idx)));
  }
  return Value::None();
}

inline void StoreHeapArray(Heap& heap, ObjRef arr, int64_t idx, FieldKind kind,
                           const Value& v) {
  switch (kind) {
    case FieldKind::kBool:
    case FieldKind::kI8: heap.ASet<int8_t>(arr, idx, static_cast<int8_t>(v.i)); break;
    case FieldKind::kI16:
    case FieldKind::kChar: heap.ASet<int16_t>(arr, idx, static_cast<int16_t>(v.i)); break;
    case FieldKind::kI32: heap.ASet<int32_t>(arr, idx, static_cast<int32_t>(v.i)); break;
    case FieldKind::kI64: heap.ASet<int64_t>(arr, idx, v.i); break;
    case FieldKind::kF32: heap.ASet<float>(arr, idx, static_cast<float>(AsF(v))); break;
    case FieldKind::kF64: heap.ASet<double>(arr, idx, AsF(v)); break;
    case FieldKind::kRef: heap.ASetRef(arr, idx, static_cast<ObjRef>(v.i)); break;
  }
}

}  // namespace

PlanExecutor::PlanExecutor(const SerPlan& plan, Heap& heap, const WellKnown& wk,
                           const DataStructAnalyzer* layouts, BuilderStore* builders)
    : primary_(plan), heap_(heap), wk_(wk), layouts_(layouts), builders_(builders) {
  AddPlan(plan);
  emit_buf_.reserve(kEmitBatch);
  heap_.AddRootProvider(this);
}

PlanExecutor::~PlanExecutor() { heap_.RemoveRootProvider(this); }

void PlanExecutor::AddPlan(const SerPlan& plan) {
  for (const PlanFunction& pf : plan.funcs()) {
    fn_index_[pf.src] = &pf;
  }
}

void PlanExecutor::set_channel(RecordChannel* channel) {
  channel_ = channel;
  input_pos_ = 0;
  input_len_ = 0;
  emit_buf_.clear();
}

void PlanExecutor::VisitRoots(const std::function<void(ObjRef*)>& visit) {
  for (size_t f = 0; f < active_frames_; ++f) {
    for (Value& value : frame_pool_[f]->slots) {
      if (value.tag == ValueTag::kRef && value.i != 0) {
        visit(reinterpret_cast<ObjRef*>(&value.i));
      }
    }
  }
}

PlanExecutor::Frame* PlanExecutor::AcquireFrame(const PlanFunction* func) {
  if (active_frames_ == frame_pool_.size()) {
    frame_pool_.push_back(std::make_unique<Frame>());
  }
  Frame* frame = frame_pool_[active_frames_++].get();
  frame->func = func;
  // Value() is all-zero bytes (kNone = 0), so a memset is the same clear as
  // assign() without the element-wise fill. Resize to the exact var count —
  // VisitRoots scans the whole slots vector of every active frame, so a
  // stale tail from a larger previous callee must not survive here.
  static_assert(std::is_trivially_copyable_v<Value>);
  const size_t num_vars = static_cast<size_t>(func->num_vars);
  frame->slots.resize(num_vars);
  std::memset(static_cast<void*>(frame->slots.data()), 0,
              num_vars * sizeof(Value));
  return frame;
}

void PlanExecutor::ReleaseFrame() { active_frames_ -= 1; }

Value PlanExecutor::CallFunction(const Function* func, const std::vector<Value>& args) {
  const PlanFunction* pf;
  if (func == last_fn_) {
    pf = last_pf_;
  } else {
    auto it = fn_index_.find(func);
    GERENUK_CHECK(it != fn_index_.end())
        << "function not in any registered plan: " << func->name;
    pf = it->second;
    last_fn_ = func;
    last_pf_ = pf;
  }
  GERENUK_CHECK_EQ(static_cast<int>(args.size()), pf->num_params);
  return Invoke(*pf, args.data(), args.size());
}

Value PlanExecutor::Invoke(const PlanFunction& func, const Value* args, size_t nargs) {
  Frame* frame = AcquireFrame(&func);
  for (size_t i = 0; i < nargs; ++i) {
    frame->slots[i] = args[i];
  }
  Value result;
  try {
    result = profile_ != nullptr ? Execute<true>(*frame) : Execute<false>(*frame);
  } catch (...) {
    ReleaseFrame();
    throw;
  }
  ReleaseFrame();
  return result;
}

int64_t PlanExecutor::ReadStringBytes(Value v, std::string* out) {
  return ReadStringValueBytes(builders_, wk_, v, out);
}

void PlanExecutor::RefillInput() {
  GERENUK_CHECK(channel_ != nullptr);
  if (channel_->next_native_batch) {
    input_len_ = channel_->next_native_batch(input_buf_, kInputBatch);
    input_pos_ = 0;
    GERENUK_CHECK(input_len_ > 0) << "record source exhausted";
    return;
  }
  GERENUK_CHECK(channel_->next_native_record);
  input_buf_[0] = channel_->next_native_record();
  input_pos_ = 0;
  input_len_ = 1;
}

void PlanExecutor::FlushEmits() {
  if (emit_buf_.empty()) {
    return;
  }
  GERENUK_CHECK(channel_ != nullptr && channel_->emit_native_batch);
  channel_->emit_native_batch(emit_buf_.data(), emit_buf_.size());
  emit_buf_.clear();
}

namespace {

// Evaluates a flattened symbolic offset: each step is constant + Σ scale ·
// i32 length read at (base + earlier step's value); the last step is the
// offset. Mirrors ResolveOffset without recursion or pool lookups.

inline int64_t EvalFlat(const SerPlan& plan, const PlanOp& op, int64_t base) {
  int64_t vals[kMaxFlatSteps];
  const FlatStep* steps = plan.flat_steps().data();
  const FlatTerm* terms = plan.flat_terms().data();
  for (int32_t i = 0; i < op.flat_len; ++i) {
    const FlatStep& step = steps[op.flat_off + i];
    int64_t v = step.constant;
    for (int32_t t = 0; t < step.num_terms; ++t) {
      const FlatTerm& term = terms[step.first_term + t];
      v += term.scale * static_cast<int64_t>(NativeReadI32(base + vals[term.step]));
    }
    vals[i] = v;
  }
  return vals[op.flat_len - 1];
}

}  // namespace

Value PlanExecutor::RunIntrinsic(const PlanOp& op, const Value* slots,
                                 const int32_t* args_pool) {
  auto arg = [&](int i) -> const Value& { return slots[args_pool[op.args_off + i]]; };
  auto arg_f = [&](int i) { return AsF(arg(i)); };
  switch (op.intrinsic) {
    case Intrinsic::kExp:
      return Value::F64(std::exp(arg_f(0)));
    case Intrinsic::kLog:
      return Value::F64(std::log(arg_f(0)));
    case Intrinsic::kSqrt:
      return Value::F64(std::sqrt(arg_f(0)));
    case Intrinsic::kAbs:
      return Value::F64(std::fabs(arg_f(0)));
    case Intrinsic::kStringLength: {
      std::string text;
      ReadStringBytes(arg(0), &text);
      return Value::I64(static_cast<int64_t>(text.size()));
    }
    case Intrinsic::kStringHash: {
      std::string text;
      ReadStringBytes(arg(0), &text);
      return Value::I64(static_cast<int64_t>(
          HashBytes(reinterpret_cast<const uint8_t*>(text.data()), text.size())));
    }
    case Intrinsic::kStringEquals: {
      std::string a;
      std::string b;
      ReadStringBytes(arg(0), &a);
      ReadStringBytes(arg(1), &b);
      return Value::Bool(a == b);
    }
    case Intrinsic::kStringCompare: {
      std::string a;
      std::string b;
      ReadStringBytes(arg(0), &a);
      ReadStringBytes(arg(1), &b);
      return Value::I64(a.compare(b));
    }
    case Intrinsic::kUnknown:
      break;
  }
  GERENUK_CHECK(false) << "no runtime implementation for native method";
  return Value::None();
}

// ---------------------------------------------------------------------------
// Vectorized tier: per-strip lane kernels
// ---------------------------------------------------------------------------
//
// Every kernel below observes the bail contract: it either completes the
// whole strip or returns false BEFORE any architecturally visible side
// effect (slot writes, builder stores, faults). On bail the dispatch loop
// jumps to the scalar loop head and replays the strip lane by lane from the
// untouched slot state, so faults and SerAborts surface at exactly the lane
// the scalar execution would have reached.

PlanExecutor::VecState* PlanExecutor::VecStateFor(const PlanOp& op, int32_t cap,
                                                  int32_t ncols, int32_t nscans) {
  auto it = vec_states_.find(&op);
  if (it != vec_states_.end()) {
    return it->second.get();
  }
  GERENUK_CHECK(cap > 0);
  auto st = std::make_unique<VecState>();
  st->ncols = ncols;
  st->cap = cap;
  // Two scratch columns beyond the plan's count (uniform-operand splats);
  // per-column stride rounded so every column starts 64-byte aligned.
  const int32_t total_cols = ncols + 2;
  const size_t stride = (static_cast<size_t>(cap) + 7) & ~size_t{7};
  st->storage.resize(stride * static_cast<size_t>(total_cols) + 8);
  uintptr_t base = reinterpret_cast<uintptr_t>(st->storage.data());
  int64_t* aligned = reinterpret_cast<int64_t*>((base + 63) & ~uintptr_t{63});
  st->col.resize(static_cast<size_t>(total_cols));
  for (int32_t c = 0; c < total_cols; ++c) {
    st->col[static_cast<size_t>(c)] = aligned + static_cast<size_t>(c) * stride;
    GERENUK_CHECK_EQ(reinterpret_cast<uintptr_t>(st->col[static_cast<size_t>(c)]) & 63,
                     0u);
  }
  st->col_tag.assign(static_cast<size_t>(total_cols), ValueTag::kNone);
  st->col_last.assign(static_cast<size_t>(total_cols), -1);
  st->sel.resize(static_cast<size_t>(cap));
  st->scan_carry.assign(static_cast<size_t>(nscans), Value());
  st->scan_valid.assign(static_cast<size_t>(nscans), 0);
  VecState* raw = st.get();
  vec_states_[&op] = std::move(st);
  return raw;
}

// Iterates the selected lanes: the full [0, nn) range while the strip is
// dense, the selection vector after a filter compacted it.
#define GVEC_LOOP(STMT)                           \
  do {                                            \
    if (st.sel_dense) {                           \
      for (int32_t j = 0; j < nn; ++j) {          \
        STMT;                                     \
      }                                           \
    } else {                                      \
      for (int32_t k = 0; k < st.sel_len; ++k) {  \
        const int32_t j = sel[k];                 \
        STMT;                                     \
      }                                           \
    }                                             \
  } while (0)

bool PlanExecutor::VecBinOpLanes(VecState& st, const PlanOp& op, const Value* slots) {
  const int32_t nn = st.n;
  const int32_t* GERENUK_RESTRICT sel = st.sel.data();
  const ValueTag ltag = op.c == 0 ? st.col_tag[static_cast<size_t>(op.a)]
                                  : slots[op.a].tag;
  const ValueTag rtag = op.d == 0 ? st.col_tag[static_cast<size_t>(op.b)]
                                  : slots[op.b].tag;
  const bool is_float = ltag == ValueTag::kF64 || rtag == ValueTag::kF64;
  const bool is_cmp = op.binop >= BinOpKind::kLt && op.binop <= BinOpKind::kNe;
  const bool is_bitwise = op.binop >= BinOpKind::kAnd && op.binop <= BinOpKind::kShr;
  if (is_float && is_bitwise) {
    return false;  // scalar replay reproduces the bitwise-on-float fatal
  }
  // Materialize both operands as full columns in the strip's numeric
  // representation: raw i64 payloads on the int path, double bits on the
  // float path. Uniform operands are splat into the scratch columns so the
  // op loops are always column(x)column.
  auto mat_int = [&](int32_t ref, int32_t mode, int32_t scratch) -> const int64_t* {
    if (mode == 0) {
      return st.col[static_cast<size_t>(ref)];
    }
    int64_t* GERENUK_RESTRICT s = st.col[static_cast<size_t>(st.ncols + scratch)];
    const int64_t u = slots[ref].i;
    for (int32_t j = 0; j < nn; ++j) {
      s[j] = u;
    }
    return s;
  };
  auto mat_f64 = [&](int32_t ref, int32_t mode, int32_t scratch) -> const int64_t* {
    int64_t* GERENUK_RESTRICT s = st.col[static_cast<size_t>(st.ncols + scratch)];
    if (mode == 0) {
      if (st.col_tag[static_cast<size_t>(ref)] == ValueTag::kF64) {
        return st.col[static_cast<size_t>(ref)];
      }
      const int64_t* GERENUK_RESTRICT c = st.col[static_cast<size_t>(ref)];
      for (int32_t j = 0; j < nn; ++j) {
        s[j] = F2Bits(static_cast<double>(c[j]));
      }
      return s;
    }
    const int64_t u = F2Bits(AsF(slots[ref]));
    for (int32_t j = 0; j < nn; ++j) {
      s[j] = u;
    }
    return s;
  };
  const int64_t* GERENUK_RESTRICT xa;
  const int64_t* GERENUK_RESTRICT xb;
  if (is_float) {
    xa = mat_f64(op.a, op.c, 0);
    xb = mat_f64(op.b, op.d, 1);
  } else {
    xa = mat_int(op.a, op.c, 0);
    xb = mat_int(op.b, op.d, 1);
  }
  // Divide-by-zero on the int path is a fatal in EvalBin: scan the selected
  // divisor lanes before computing anything and bail so the scalar replay
  // faults at the first offending lane.
  if (!is_float && (op.binop == BinOpKind::kDiv || op.binop == BinOpKind::kRem)) {
    if (st.sel_dense) {
      for (int32_t j = 0; j < nn; ++j) {
        if (xb[j] == 0) {
          return false;
        }
      }
    } else {
      for (int32_t k = 0; k < st.sel_len; ++k) {
        if (xb[sel[k]] == 0) {
          return false;
        }
      }
    }
  }
  int64_t* GERENUK_RESTRICT dd = st.col[static_cast<size_t>(op.dst)];
  if (!is_float) {
    switch (op.binop) {
      case BinOpKind::kAdd: GVEC_LOOP(dd[j] = xa[j] + xb[j]); break;
      case BinOpKind::kSub: GVEC_LOOP(dd[j] = xa[j] - xb[j]); break;
      case BinOpKind::kMul: GVEC_LOOP(dd[j] = xa[j] * xb[j]); break;
      case BinOpKind::kDiv: GVEC_LOOP(dd[j] = xa[j] / xb[j]); break;
      case BinOpKind::kRem: GVEC_LOOP(dd[j] = xa[j] % xb[j]); break;
      case BinOpKind::kLt: GVEC_LOOP(dd[j] = xa[j] < xb[j] ? 1 : 0); break;
      case BinOpKind::kLe: GVEC_LOOP(dd[j] = xa[j] <= xb[j] ? 1 : 0); break;
      case BinOpKind::kGt: GVEC_LOOP(dd[j] = xa[j] > xb[j] ? 1 : 0); break;
      case BinOpKind::kGe: GVEC_LOOP(dd[j] = xa[j] >= xb[j] ? 1 : 0); break;
      case BinOpKind::kEq: GVEC_LOOP(dd[j] = xa[j] == xb[j] ? 1 : 0); break;
      case BinOpKind::kNe: GVEC_LOOP(dd[j] = xa[j] != xb[j] ? 1 : 0); break;
      case BinOpKind::kAnd: GVEC_LOOP(dd[j] = xa[j] & xb[j]); break;
      case BinOpKind::kOr: GVEC_LOOP(dd[j] = xa[j] | xb[j]); break;
      case BinOpKind::kXor: GVEC_LOOP(dd[j] = xa[j] ^ xb[j]); break;
      case BinOpKind::kShl: GVEC_LOOP(dd[j] = xa[j] << xb[j]); break;
      case BinOpKind::kShr: GVEC_LOOP(dd[j] = xa[j] >> xb[j]); break;
      case BinOpKind::kMin: GVEC_LOOP(dd[j] = xa[j] < xb[j] ? xa[j] : xb[j]); break;
      case BinOpKind::kMax: GVEC_LOOP(dd[j] = xa[j] > xb[j] ? xa[j] : xb[j]); break;
    }
    st.col_tag[static_cast<size_t>(op.dst)] = ValueTag::kI64;
  } else {
    switch (op.binop) {
      case BinOpKind::kAdd:
        GVEC_LOOP(dd[j] = F2Bits(BitsAsF(xa[j]) + BitsAsF(xb[j])));
        break;
      case BinOpKind::kSub:
        GVEC_LOOP(dd[j] = F2Bits(BitsAsF(xa[j]) - BitsAsF(xb[j])));
        break;
      case BinOpKind::kMul:
        GVEC_LOOP(dd[j] = F2Bits(BitsAsF(xa[j]) * BitsAsF(xb[j])));
        break;
      case BinOpKind::kDiv:
        GVEC_LOOP(dd[j] = F2Bits(BitsAsF(xa[j]) / BitsAsF(xb[j])));
        break;
      case BinOpKind::kRem:
        GVEC_LOOP(dd[j] = F2Bits(std::fmod(BitsAsF(xa[j]), BitsAsF(xb[j]))));
        break;
      case BinOpKind::kLt: GVEC_LOOP(dd[j] = BitsAsF(xa[j]) < BitsAsF(xb[j]) ? 1 : 0); break;
      case BinOpKind::kLe: GVEC_LOOP(dd[j] = BitsAsF(xa[j]) <= BitsAsF(xb[j]) ? 1 : 0); break;
      case BinOpKind::kGt: GVEC_LOOP(dd[j] = BitsAsF(xa[j]) > BitsAsF(xb[j]) ? 1 : 0); break;
      case BinOpKind::kGe: GVEC_LOOP(dd[j] = BitsAsF(xa[j]) >= BitsAsF(xb[j]) ? 1 : 0); break;
      case BinOpKind::kEq: GVEC_LOOP(dd[j] = BitsAsF(xa[j]) == BitsAsF(xb[j]) ? 1 : 0); break;
      case BinOpKind::kNe: GVEC_LOOP(dd[j] = BitsAsF(xa[j]) != BitsAsF(xb[j]) ? 1 : 0); break;
      case BinOpKind::kMin:
        GVEC_LOOP({
          const double x = BitsAsF(xa[j]);
          const double y = BitsAsF(xb[j]);
          dd[j] = F2Bits(x < y ? x : y);
        });
        break;
      case BinOpKind::kMax:
        GVEC_LOOP({
          const double x = BitsAsF(xa[j]);
          const double y = BitsAsF(xb[j]);
          dd[j] = F2Bits(x > y ? x : y);
        });
        break;
      default:
        return false;  // unreachable: bitwise handled above
    }
    st.col_tag[static_cast<size_t>(op.dst)] = is_cmp ? ValueTag::kI64 : ValueTag::kF64;
  }
  st.col_last[static_cast<size_t>(op.dst)] =
      st.sel_dense ? nn - 1 : sel[st.sel_len - 1];
  return true;
}

bool PlanExecutor::VecUnOpLanes(VecState& st, const PlanOp& op, const Value* slots) {
  const int32_t nn = st.n;
  const int32_t* GERENUK_RESTRICT sel = st.sel.data();
  int64_t* GERENUK_RESTRICT dd = st.col[static_cast<size_t>(op.dst)];
  if (op.b == 1) {
    // Broadcast / copy forms (kAssign and kConst in the loop body).
    if (op.c == 2) {
      const int64_t bits = op.imm_tag == ValueTag::kF64 ? F2Bits(op.fimm) : op.imm;
      for (int32_t j = 0; j < nn; ++j) {
        dd[j] = bits;
      }
      st.col_tag[static_cast<size_t>(op.dst)] = op.imm_tag;
    } else if (op.c == 1) {
      const Value v = slots[op.a];
      const int64_t bits = v.tag == ValueTag::kF64 ? F2Bits(v.d) : v.i;
      for (int32_t j = 0; j < nn; ++j) {
        dd[j] = bits;
      }
      st.col_tag[static_cast<size_t>(op.dst)] = v.tag;
    } else {
      const int64_t* GERENUK_RESTRICT cc = st.col[static_cast<size_t>(op.a)];
      for (int32_t j = 0; j < nn; ++j) {
        dd[j] = cc[j];
      }
      st.col_tag[static_cast<size_t>(op.dst)] = st.col_tag[static_cast<size_t>(op.a)];
    }
    st.col_last[static_cast<size_t>(op.dst)] =
        st.sel_dense ? nn - 1 : sel[st.sel_len - 1];
    return true;
  }
  // Real unops. A uniform source is splat into scratch 0 so each kind is one
  // column loop; the weird-tag cases mirror the scalar handler exactly (a
  // kF64 Value carries i == 0, which is what AsBool and kI2F observe).
  const int64_t* GERENUK_RESTRICT xs;
  ValueTag stag;
  if (op.c == 0) {
    xs = st.col[static_cast<size_t>(op.a)];
    stag = st.col_tag[static_cast<size_t>(op.a)];
  } else {
    int64_t* GERENUK_RESTRICT s = st.col[static_cast<size_t>(st.ncols)];
    const Value v = slots[op.a];
    const int64_t bits = v.tag == ValueTag::kF64 ? F2Bits(v.d) : v.i;
    for (int32_t j = 0; j < nn; ++j) {
      s[j] = bits;
    }
    xs = s;
    stag = v.tag;
  }
  ValueTag out_tag = ValueTag::kI64;
  switch (op.unop) {
    case UnOpKind::kNeg:
      if (stag == ValueTag::kF64) {
        GVEC_LOOP(dd[j] = F2Bits(-BitsAsF(xs[j])));
        out_tag = ValueTag::kF64;
      } else {
        GVEC_LOOP(dd[j] = -xs[j]);
      }
      break;
    case UnOpKind::kNot:
      if (stag == ValueTag::kF64) {
        GVEC_LOOP(dd[j] = 1);  // scalar AsBool reads .i, zero for kF64 Values
      } else {
        GVEC_LOOP(dd[j] = xs[j] == 0 ? 1 : 0);
      }
      break;
    case UnOpKind::kI2F:
      if (stag == ValueTag::kF64) {
        GVEC_LOOP(dd[j] = F2Bits(0.0));
      } else {
        GVEC_LOOP(dd[j] = F2Bits(static_cast<double>(xs[j])));
      }
      out_tag = ValueTag::kF64;
      break;
    case UnOpKind::kF2I:
      if (stag == ValueTag::kF64) {
        GVEC_LOOP(dd[j] = static_cast<int64_t>(BitsAsF(xs[j])));
      } else {
        GVEC_LOOP(dd[j] = static_cast<int64_t>(static_cast<double>(xs[j])));
      }
      break;
  }
  st.col_tag[static_cast<size_t>(op.dst)] = out_tag;
  st.col_last[static_cast<size_t>(op.dst)] =
      st.sel_dense ? nn - 1 : sel[st.sel_len - 1];
  return true;
}

// Serial in-order reduction over the selected lanes: bit-exact against the
// scalar loop by construction (same expression per lane, same order).
#define GVEC_SCAN_I(EXPR)                        \
  do {                                           \
    for (int32_t k = 0; k < st.sel_len; ++k) {   \
      const int32_t j = st.sel_dense ? k : sel[k]; \
      const int64_t x = xc != nullptr ? xc[j] : xu; \
      const int64_t l = carry_left ? c : x;      \
      const int64_t r = carry_left ? x : c;      \
      c = (EXPR);                                \
      dd[j] = c;                                 \
    }                                            \
  } while (0)
#define GVEC_SCAN_F(EXPR, STORE)                 \
  do {                                           \
    for (int32_t k = 0; k < st.sel_len; ++k) {   \
      const int32_t j = st.sel_dense ? k : sel[k]; \
      const double x = xc != nullptr                              \
                           ? (xtag == ValueTag::kF64              \
                                  ? BitsAsF(xc[j])                \
                                  : static_cast<double>(xc[j]))   \
                           : xf;                 \
      const double l = carry_left ? c : x;       \
      const double r = carry_left ? x : c;       \
      c = (EXPR);                                \
      dd[j] = (STORE);                           \
    }                                            \
  } while (0)

bool PlanExecutor::VecScanLanes(VecState& st, const PlanOp& op, const Value* slots) {
  const int32_t* GERENUK_RESTRICT sel = st.sel.data();
  const size_t scan_idx = static_cast<size_t>(op.dst2);
  const Value carry0 = slots[op.a];
  const int64_t* xc = nullptr;
  Value xuni = Value::None();
  ValueTag xtag;
  if (op.d == 0) {
    xc = st.col[static_cast<size_t>(op.b)];
    xtag = st.col_tag[static_cast<size_t>(op.b)];
  } else {
    xuni = slots[op.b];
    xtag = xuni.tag;
  }
  const bool is_float = carry0.tag == ValueTag::kF64 || xtag == ValueTag::kF64;
  const bool is_cmp = op.binop >= BinOpKind::kLt && op.binop <= BinOpKind::kNe;
  const bool is_bitwise = op.binop >= BinOpKind::kAnd && op.binop <= BinOpKind::kShr;
  if (is_float && is_bitwise) {
    return false;
  }
  const bool carry_left = op.c == 0;
  int64_t* GERENUK_RESTRICT dd = st.col[static_cast<size_t>(op.dst)];
  if (!is_float) {
    const int64_t xu = xc != nullptr ? 0 : xuni.i;
    int64_t c = carry0.i;
    switch (op.binop) {
      case BinOpKind::kAdd: GVEC_SCAN_I(l + r); break;
      case BinOpKind::kSub: GVEC_SCAN_I(l - r); break;
      case BinOpKind::kMul: GVEC_SCAN_I(l * r); break;
      case BinOpKind::kDiv:
      case BinOpKind::kRem: {
        // The divisor can be the carry itself, so the zero check is per-lane;
        // bailing mid-scan is safe — only the scratch column was touched.
        const bool is_div = op.binop == BinOpKind::kDiv;
        for (int32_t k = 0; k < st.sel_len; ++k) {
          const int32_t j = st.sel_dense ? k : sel[k];
          const int64_t x = xc != nullptr ? xc[j] : xu;
          const int64_t l = carry_left ? c : x;
          const int64_t r = carry_left ? x : c;
          if (r == 0) {
            return false;
          }
          c = is_div ? l / r : l % r;
          dd[j] = c;
        }
        break;
      }
      case BinOpKind::kLt: GVEC_SCAN_I(l < r ? 1 : 0); break;
      case BinOpKind::kLe: GVEC_SCAN_I(l <= r ? 1 : 0); break;
      case BinOpKind::kGt: GVEC_SCAN_I(l > r ? 1 : 0); break;
      case BinOpKind::kGe: GVEC_SCAN_I(l >= r ? 1 : 0); break;
      case BinOpKind::kEq: GVEC_SCAN_I(l == r ? 1 : 0); break;
      case BinOpKind::kNe: GVEC_SCAN_I(l != r ? 1 : 0); break;
      case BinOpKind::kAnd: GVEC_SCAN_I(l & r); break;
      case BinOpKind::kOr: GVEC_SCAN_I(l | r); break;
      case BinOpKind::kXor: GVEC_SCAN_I(l ^ r); break;
      case BinOpKind::kShl: GVEC_SCAN_I(l << r); break;
      case BinOpKind::kShr: GVEC_SCAN_I(l >> r); break;
      case BinOpKind::kMin: GVEC_SCAN_I(l < r ? l : r); break;
      case BinOpKind::kMax: GVEC_SCAN_I(l > r ? l : r); break;
    }
    st.scan_carry[scan_idx] = Value::I64(c);
    st.col_tag[static_cast<size_t>(op.dst)] = ValueTag::kI64;
  } else {
    const double xf = xc != nullptr ? 0.0 : AsF(xuni);
    double c = AsF(carry0);
    switch (op.binop) {
      case BinOpKind::kAdd: GVEC_SCAN_F(l + r, F2Bits(c)); break;
      case BinOpKind::kSub: GVEC_SCAN_F(l - r, F2Bits(c)); break;
      case BinOpKind::kMul: GVEC_SCAN_F(l * r, F2Bits(c)); break;
      case BinOpKind::kDiv: GVEC_SCAN_F(l / r, F2Bits(c)); break;
      case BinOpKind::kRem: GVEC_SCAN_F(std::fmod(l, r), F2Bits(c)); break;
      case BinOpKind::kLt: GVEC_SCAN_F(l < r ? 1.0 : 0.0, static_cast<int64_t>(c)); break;
      case BinOpKind::kLe: GVEC_SCAN_F(l <= r ? 1.0 : 0.0, static_cast<int64_t>(c)); break;
      case BinOpKind::kGt: GVEC_SCAN_F(l > r ? 1.0 : 0.0, static_cast<int64_t>(c)); break;
      case BinOpKind::kGe: GVEC_SCAN_F(l >= r ? 1.0 : 0.0, static_cast<int64_t>(c)); break;
      case BinOpKind::kEq: GVEC_SCAN_F(l == r ? 1.0 : 0.0, static_cast<int64_t>(c)); break;
      case BinOpKind::kNe: GVEC_SCAN_F(l != r ? 1.0 : 0.0, static_cast<int64_t>(c)); break;
      case BinOpKind::kMin: GVEC_SCAN_F(l < r ? l : r, F2Bits(c)); break;
      case BinOpKind::kMax: GVEC_SCAN_F(l > r ? l : r, F2Bits(c)); break;
      default:
        return false;  // unreachable: bitwise handled above
    }
    if (is_cmp) {
      st.scan_carry[scan_idx] = Value::I64(static_cast<int64_t>(c));
      st.col_tag[static_cast<size_t>(op.dst)] = ValueTag::kI64;
    } else {
      st.scan_carry[scan_idx] = Value::F64(c);
      st.col_tag[static_cast<size_t>(op.dst)] = ValueTag::kF64;
    }
  }
  st.scan_valid[scan_idx] = 1;
  st.col_last[static_cast<size_t>(op.dst)] =
      st.sel_dense ? st.sel_len - 1 : sel[st.sel_len - 1];
  return true;
}

#undef GVEC_SCAN_I
#undef GVEC_SCAN_F

bool PlanExecutor::VecReadColLanes(VecState& st, const PlanOp& op, const Value* slots) {
  const int32_t nn = st.n;
  const int32_t* GERENUK_RESTRICT sel = st.sel.data();
  int64_t* GERENUK_RESTRICT dd = st.col[static_cast<size_t>(op.dst)];
  const int64_t base = slots[op.a].i;
  if (op.c == 1) {
    // Length broadcast: the base is loop-invariant, so the scalar loop would
    // issue the same read every iteration (same fatals too — ArrayLength's
    // klass check fires here exactly where lane 0 would hit it).
    const int64_t len =
        IsBuilderAddr(base) ? builders_->ArrayLength(base) : NativeReadI32(base);
    for (int32_t j = 0; j < nn; ++j) {
      dd[j] = len;
    }
    st.col_tag[static_cast<size_t>(op.dst)] = ValueTag::kI64;
    st.col_last[static_cast<size_t>(op.dst)] =
        st.sel_dense ? nn - 1 : sel[st.sel_len - 1];
    return true;
  }
  const int64_t* idxc = op.d == 0 ? st.col[static_cast<size_t>(op.b)] : nullptr;
  const int64_t uidx = op.d == 0 ? 0 : slots[op.b].i;
  int64_t data_addr;
  int64_t len;
  int64_t elem_off0;
  if (IsBuilderAddr(base)) {
    uint8_t* data = nullptr;
    if (!builders_->TryGetPrimArray(base, op.kind, &data, &len)) {
      return false;  // odd node shape: scalar replay reproduces its fault
    }
    data_addr = reinterpret_cast<int64_t>(data);
    elem_off0 = 0;
  } else {
    len = NativeReadI32(base);
    data_addr = base;
    elem_off0 = 4;  // committed arrays are [len:i32][elements]
  }
  // Bounds are a fatal in both the builder and committed scalar paths: bail
  // so the replay faults at the first out-of-range lane.
  bool oob = false;
  if (idxc != nullptr) {
    GVEC_LOOP(oob |= idxc[j] < 0 || idxc[j] >= len);
  } else {
    oob = uidx < 0 || uidx >= len;
  }
  if (oob) {
    return false;
  }
  const int64_t esz = FieldKindSize(op.kind);
  if (op.float_kind) {
    GVEC_LOOP(dd[j] = F2Bits(NativeReadFloat(
                  data_addr, elem_off0 + (idxc != nullptr ? idxc[j] : uidx) * esz,
                  op.kind)));
  } else {
    GVEC_LOOP(dd[j] = NativeReadInt(
                  data_addr, elem_off0 + (idxc != nullptr ? idxc[j] : uidx) * esz,
                  op.kind));
  }
  st.col_tag[static_cast<size_t>(op.dst)] = op.float_kind ? ValueTag::kF64 : ValueTag::kI64;
  st.col_last[static_cast<size_t>(op.dst)] =
      st.sel_dense ? nn - 1 : sel[st.sel_len - 1];
  return true;
}

bool PlanExecutor::VecWriteColPrepare(VecState& st, const PlanOp& op, const Value* slots,
                                      const int32_t* args_pool) {
  const int32_t nn = st.n;
  const int32_t* GERENUK_RESTRICT sel = st.sel.data();
  const int64_t base = slots[op.a].i;
  if (!IsBuilderAddr(base)) {
    return false;  // scalar replay raises SerAbort{kDisruptNativeSpace}
  }
  // Runtime alias guards: the lowering proved the stored array is a distinct
  // slot from every gathered array, but two distinct slots can still hold the
  // same builder — in that case lane-major commit order would diverge from
  // the scalar's op-major order, so hand the strip to the scalar loop.
  for (int32_t g = 0; g < op.args_len; ++g) {
    if (slots[args_pool[op.args_off + g]].i == base) {
      return false;
    }
  }
  uint8_t* data = nullptr;
  int64_t len = 0;
  if (!builders_->TryGetPrimArray(base, op.kind, &data, &len)) {
    return false;
  }
  const int64_t* idxc = st.col[static_cast<size_t>(op.b)];
  bool oob = false;
  GVEC_LOOP(oob |= idxc[j] < 0 || idxc[j] >= len);
  if (oob) {
    return false;  // replay hits the builder bounds fatal at the right lane
  }
  // All checks passed — defer the scatter to kVecLoopEnd so a later op's
  // bail can still replay this strip from pristine state.
  if (st.pending_count == st.pending.size()) {
    st.pending.emplace_back();
  }
  VecState::Pending& p = st.pending[st.pending_count++];
  p.op = &op;
  if (st.sel_dense) {
    p.count = -1;
  } else {
    p.count = st.sel_len;
    p.lanes.assign(sel, sel + st.sel_len);
  }
  return true;
}

void PlanExecutor::VecFilterLanes(VecState& st, const PlanOp& op, const Value* slots) {
  const int32_t nn = st.n;
  // b == 0: keep lanes whose condition is false (the If() shape — the scalar
  // branch skips the rest of the body when the condition holds).
  const bool keep_if = op.b != 0;
  if (op.c == 1) {
    if (slots[op.a].AsBool() != keep_if) {
      st.sel_len = 0;
    }
    return;
  }
  const int64_t* GERENUK_RESTRICT cc = st.col[static_cast<size_t>(op.a)];
  if (st.col_tag[static_cast<size_t>(op.a)] == ValueTag::kF64) {
    // Scalar AsBool reads Value::i, which is zero for every kF64 Value: the
    // condition is uniformly false.
    if (keep_if) {
      st.sel_len = 0;
    }
    return;
  }
  int32_t* GERENUK_RESTRICT sel = st.sel.data();
  int32_t out = 0;
  if (st.sel_dense) {
    for (int32_t j = 0; j < nn; ++j) {
      if ((cc[j] != 0) == keep_if) {
        sel[out++] = j;
      }
    }
    st.sel_dense = out == nn;
  } else {
    for (int32_t k = 0; k < st.sel_len; ++k) {
      const int32_t j = sel[k];
      if ((cc[j] != 0) == keep_if) {
        sel[out++] = j;
      }
    }
  }
  st.sel_len = out;
}

void PlanExecutor::VecCommitStrip(VecState& st, const PlanOp& end_op, Value* slots,
                                  const int32_t* args_pool) {
  // 1. Deferred scatters, in op order then lane order — equivalent to the
  // scalar order because every pending op's checks proved independence.
  for (size_t pi = 0; pi < st.pending_count; ++pi) {
    const VecState::Pending& p = st.pending[pi];
    const PlanOp& sop = *p.op;
    const int64_t base = slots[sop.a].i;
    uint8_t* data = nullptr;
    int64_t len = 0;
    const bool ok = builders_->TryGetPrimArray(base, sop.kind, &data, &len);
    GERENUK_CHECK(ok);  // verified at prepare time; the body cannot change it
    const int64_t daddr = reinterpret_cast<int64_t>(data);
    const int64_t esz = FieldKindSize(sop.kind);
    const int64_t* idxc = st.col[static_cast<size_t>(sop.b)];
    const int64_t* valc = sop.d == 0 ? st.col[static_cast<size_t>(sop.c)] : nullptr;
    const ValueTag vt = sop.d == 0 ? st.col_tag[static_cast<size_t>(sop.c)]
                                   : slots[sop.c].tag;
    const Value uni = sop.d == 0 ? Value::None() : slots[sop.c];
    const int32_t cnt = p.count < 0 ? st.n : p.count;
    for (int32_t k = 0; k < cnt; ++k) {
      const int32_t j = p.count < 0 ? k : p.lanes[static_cast<size_t>(k)];
      const int64_t off = idxc[j] * esz;
      if (sop.float_kind) {
        const double fv = valc != nullptr
                              ? (vt == ValueTag::kF64 ? BitsAsF(valc[j])
                                                      : static_cast<double>(valc[j]))
                              : AsF(uni);
        NativeWriteFloat(daddr, off, sop.kind, fv);
      } else {
        // Scalar ArrayStore passes Value::i, which is zero for kF64 Values.
        const int64_t iv =
            valc != nullptr ? (vt == ValueTag::kF64 ? 0 : valc[j]) : uni.i;
        NativeWriteInt(daddr, off, sop.kind, iv);
      }
    }
  }
  // 2. Column write-backs: each slot gets the value of the last lane that
  // defined it this strip (col_last is -1 when the defining op was skipped
  // by an empty selection — the slot keeps its pre-strip value, exactly as
  // the scalar loop would leave it).
  const int32_t* a = &args_pool[end_op.args_off];
  int32_t ncol = *a++;
  for (int32_t w = 0; w < ncol; ++w) {
    const int32_t slot = *a++;
    const int32_t col = *a++;
    const int32_t last = st.col_last[static_cast<size_t>(col)];
    if (last < 0) {
      continue;
    }
    const ValueTag t = st.col_tag[static_cast<size_t>(col)];
    const int64_t bits = st.col[static_cast<size_t>(col)][last];
    slots[slot] = t == ValueTag::kF64 ? Value::F64(BitsAsF(bits)) : Value{t, bits, 0.0};
  }
  // 3. Scan carries.
  int32_t nscan = *a++;
  for (int32_t w = 0; w < nscan; ++w) {
    const int32_t slot = *a++;
    const int32_t idx = *a++;
    if (st.scan_valid[static_cast<size_t>(idx)]) {
      slots[slot] = st.scan_carry[static_cast<size_t>(idx)];
    }
  }
  // 4. Advance the induction slot past the strip.
  slots[end_op.a] = Value::I64(st.base + st.n);
}

#undef GVEC_LOOP

template <bool kProfiled>
Value PlanExecutor::Execute(Frame& frame) {
  const PlanFunction& pf = *frame.func;
  const SerPlan& plan = *pf.plan;
  const PlanOp* const ops = pf.ops.data();
  Value* const slots = frame.slots.data();
  const int32_t* const args_pool = pf.args_pool.data();
  int64_t pc = 0;
  const PlanOp* op;

  // Op accounting stays off the dispatch path: a local counter is flushed
  // into ops_executed_ on every exit, including SerAbort unwinds.
  struct OpCount {
    int64_t n = 0;
    int64_t* sink;
    explicit OpCount(int64_t* s) : sink(s) {}
    ~OpCount() { *sink += n; }
  } opcount(&ops_executed_);

#ifdef GERENUK_COMPUTED_GOTO
  // One entry per PlanOpCode, in declaration order.
  static const void* kDispatch[] = {
      &&lbl_kConst, &&lbl_kAssign, &&lbl_kBinOp, &&lbl_kUnOp, &&lbl_kDeserialize,
      &&lbl_kSerialize, &&lbl_kFieldLoad, &&lbl_kFieldStore, &&lbl_kArrayLoad,
      &&lbl_kArrayStore, &&lbl_kArrayLength, &&lbl_kNewObject, &&lbl_kNewArray,
      &&lbl_kCall, &&lbl_kIntrinsic, &&lbl_kBranch, &&lbl_kJump, &&lbl_kReturn,
      &&lbl_kReturnVoid, &&lbl_kGetAddress, &&lbl_kGWriteObject,
      &&lbl_kReadNativeConst, &&lbl_kReadNativeSym, &&lbl_kWriteNative,
      &&lbl_kAddrOfFieldConst, &&lbl_kAddrOfFieldSym, &&lbl_kNativeArrayLength,
      &&lbl_kNativeArrayLoad, &&lbl_kNativeArrayStore, &&lbl_kNativeArrayElemAddr,
      &&lbl_kAppendRecord, &&lbl_kAppendArray, &&lbl_kAttachField,
      &&lbl_kAttachElement, &&lbl_kAbort, &&lbl_kBinOpBranch, &&lbl_kNotBranch,
      &&lbl_kBinOpJump, &&lbl_kReadConstBin, &&lbl_kBinOpBin,
      &&lbl_kBinOpBinJump, &&lbl_kBinOpRun, &&lbl_kBinOpRunBranch,
      &&lbl_kBinOpRunJump, &&lbl_kBranchElse, &&lbl_kBinOpBranchElse,
      &&lbl_kBinOpRunBranchElse, &&lbl_kVecLoopBegin, &&lbl_kVecBinOp,
      &&lbl_kVecUnOp, &&lbl_kVecScan, &&lbl_kVecReadCol, &&lbl_kVecWriteCol,
      &&lbl_kVecFilter, &&lbl_kVecLoopEnd,
  };
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                static_cast<size_t>(PlanOpCode::kCount));
  // The kProfiled=false instantiation compiles PROFILE_OP() to nothing, so
  // the unprofiled dispatch loop is instruction-for-instruction the plain
  // direct-threaded loop — profiling support costs zero when off.
#define PROFILE_OP()                                      \
  do {                                                    \
    if constexpr (kProfiled) {                            \
      ProfileOp(static_cast<size_t>(op->code));           \
    }                                                     \
  } while (0)
#define OP(name) lbl_##name:
#define NEXT()                                            \
  do {                                                    \
    op = &ops[++pc];                                      \
    opcount.n += 1;                                       \
    PROFILE_OP();                                         \
    goto* kDispatch[static_cast<size_t>(op->code)];       \
  } while (0)
#define JUMP(t)                                           \
  do {                                                    \
    pc = (t);                                             \
    op = &ops[pc];                                        \
    opcount.n += 1;                                       \
    PROFILE_OP();                                         \
    goto* kDispatch[static_cast<size_t>(op->code)];       \
  } while (0)
  JUMP(0);
#else
#define OP(name) case PlanOpCode::name:
#define NEXT()  \
  {             \
    ++pc;       \
    break;      \
  }
#define JUMP(t) \
  {             \
    pc = (t);   \
    break;      \
  }
  for (;;) {
    op = &ops[pc];
    opcount.n += 1;
    if constexpr (kProfiled) {
      ProfileOp(static_cast<size_t>(op->code));
    }
    switch (op->code) {
#endif

  OP(kConst) {
    slots[op->dst] = Value{op->imm_tag, op->imm, op->fimm};
    NEXT();
  }
  OP(kAssign) {
    slots[op->dst] = slots[op->a];
    NEXT();
  }
  OP(kBinOp) {
    slots[op->dst] = EvalBin(op->binop, slots[op->a], slots[op->b]);
    NEXT();
  }
  OP(kUnOp) {
    switch (op->unop) {
      case UnOpKind::kNeg:
        slots[op->dst] = slots[op->a].tag == ValueTag::kF64 ? Value::F64(-slots[op->a].d)
                                                            : Value::I64(-slots[op->a].i);
        break;
      case UnOpKind::kNot:
        slots[op->dst] = Value::Bool(!slots[op->a].AsBool());
        break;
      case UnOpKind::kI2F:
        slots[op->dst] = Value::F64(static_cast<double>(slots[op->a].i));
        break;
      case UnOpKind::kF2I:
        slots[op->dst] = Value::I64(static_cast<int64_t>(AsF(slots[op->a])));
        break;
    }
    NEXT();
  }
  OP(kDeserialize) {
    GERENUK_CHECK(channel_ != nullptr && channel_->next_heap_record);
    slots[op->dst] = Value::Ref(static_cast<int64_t>(channel_->next_heap_record()));
    NEXT();
  }
  OP(kSerialize) {
    GERENUK_CHECK(channel_ != nullptr && channel_->emit_heap_record);
    channel_->emit_heap_record(static_cast<ObjRef>(slots[op->a].i), op->klass);
    NEXT();
  }
  OP(kFieldLoad) {
    slots[op->dst] =
        LoadHeapField(heap_, static_cast<ObjRef>(slots[op->a].i), op->imm, op->kind);
    NEXT();
  }
  OP(kFieldStore) {
    StoreHeapField(heap_, static_cast<ObjRef>(slots[op->a].i), op->imm, op->kind,
                   slots[op->b]);
    NEXT();
  }
  OP(kArrayLoad) {
    slots[op->dst] =
        LoadHeapArray(heap_, static_cast<ObjRef>(slots[op->a].i), slots[op->b].i, op->kind);
    NEXT();
  }
  OP(kArrayStore) {
    StoreHeapArray(heap_, static_cast<ObjRef>(slots[op->a].i), slots[op->b].i, op->kind,
                   slots[op->c]);
    NEXT();
  }
  OP(kArrayLength) {
    slots[op->dst] = Value::I64(heap_.ArrayLength(static_cast<ObjRef>(slots[op->a].i)));
    NEXT();
  }
  OP(kNewObject) {
    slots[op->dst] = Value::Ref(static_cast<int64_t>(heap_.AllocObject(op->klass)));
    NEXT();
  }
  OP(kNewArray) {
    slots[op->dst] =
        Value::Ref(static_cast<int64_t>(heap_.AllocArray(op->klass, slots[op->a].i)));
    NEXT();
  }
  OP(kCall) {
    const PlanFunction& callee = plan.funcs()[static_cast<size_t>(op->callee)];
    Frame* cf = AcquireFrame(&callee);
    for (int32_t i = 0; i < op->args_len; ++i) {
      cf->slots[static_cast<size_t>(i)] = slots[args_pool[op->args_off + i]];
    }
    Value result;
    try {
      result = Execute<kProfiled>(*cf);
    } catch (...) {
      ReleaseFrame();
      throw;
    }
    ReleaseFrame();
    if (op->dst >= 0) {
      slots[op->dst] = result;
    }
    NEXT();
  }
  OP(kIntrinsic) {
    Value result = RunIntrinsic(*op, slots, args_pool);
    if (op->dst >= 0) {
      slots[op->dst] = result;
    }
    NEXT();
  }
  OP(kBranch) {
    if (slots[op->a].AsBool()) {
      JUMP(op->target);
    }
    NEXT();
  }
  OP(kJump) { JUMP(op->target); }
  OP(kReturn) { return op->a >= 0 ? slots[op->a] : Value::None(); }
  OP(kReturnVoid) { return Value::None(); }
  OP(kGetAddress) {
    if (input_pos_ == input_len_) {
      RefillInput();
    }
    slots[op->dst] = Value::Addr(input_buf_[input_pos_++]);
    NEXT();
  }
  OP(kGWriteObject) {
    GERENUK_CHECK(channel_ != nullptr);
    if (channel_->emit_native_batch) {
      emit_buf_.push_back(EmittedRecord{slots[op->a].i, op->klass});
      if (emit_buf_.size() >= kEmitBatch) {
        FlushEmits();
      }
    } else {
      GERENUK_CHECK(channel_->emit_native_record);
      channel_->emit_native_record(slots[op->a].i, op->klass);
    }
    NEXT();
  }
  OP(kReadNativeConst) {
    int64_t addr = slots[op->a].i;
    if (IsBuilderAddr(addr)) {
      int64_t iv = 0;
      double fv = 0.0;
      builders_->ReadField(addr, op->field_index, op->kind, &iv, &fv);
      slots[op->dst] = op->float_kind ? Value::F64(fv) : Value::I64(iv);
    } else {
      slots[op->dst] = op->float_kind
                           ? Value::F64(NativeReadFloat(addr, op->imm, op->kind))
                           : Value::I64(NativeReadInt(addr, op->imm, op->kind));
    }
    NEXT();
  }
  OP(kReadNativeSym) {
    int64_t addr = slots[op->a].i;
    if (IsBuilderAddr(addr)) {
      int64_t iv = 0;
      double fv = 0.0;
      builders_->ReadField(addr, op->field_index, op->kind, &iv, &fv);
      slots[op->dst] = op->float_kind ? Value::F64(fv) : Value::I64(iv);
    } else {
      int64_t off = op->flat_off >= 0 ? EvalFlat(plan, *op, addr)
                                      : ResolveOffset(layouts_->pool(), op->expr_id, addr);
      slots[op->dst] = op->float_kind ? Value::F64(NativeReadFloat(addr, off, op->kind))
                                      : Value::I64(NativeReadInt(addr, off, op->kind));
    }
    NEXT();
  }
  OP(kWriteNative) {
    int64_t addr = slots[op->a].i;
    if (!IsBuilderAddr(addr)) {
      throw SerAbort{AbortReason::kDisruptNativeSpace,
                     "writeNative on committed input record"};
    }
    if (op->float_kind) {
      builders_->WriteField(addr, op->field_index, op->kind, 0, AsF(slots[op->b]));
    } else {
      builders_->WriteField(addr, op->field_index, op->kind, slots[op->b].i, 0.0);
    }
    NEXT();
  }
  OP(kAddrOfFieldConst) {
    int64_t addr = slots[op->a].i;
    slots[op->dst] = Value::Addr(IsBuilderAddr(addr)
                                     ? builders_->FieldAddr(addr, op->field_index)
                                     : addr + op->imm);
    NEXT();
  }
  OP(kAddrOfFieldSym) {
    int64_t addr = slots[op->a].i;
    if (IsBuilderAddr(addr)) {
      slots[op->dst] = Value::Addr(builders_->FieldAddr(addr, op->field_index));
    } else {
      int64_t off = op->flat_off >= 0 ? EvalFlat(plan, *op, addr)
                                      : ResolveOffset(layouts_->pool(), op->expr_id, addr);
      slots[op->dst] = Value::Addr(addr + off);
    }
    NEXT();
  }
  OP(kNativeArrayLength) {
    int64_t addr = slots[op->a].i;
    slots[op->dst] = Value::I64(IsBuilderAddr(addr) ? builders_->ArrayLength(addr)
                                                    : NativeReadI32(addr));
    NEXT();
  }
  OP(kNativeArrayLoad) {
    int64_t addr = slots[op->a].i;
    int64_t idx = slots[op->b].i;
    if (IsBuilderAddr(addr)) {
      int64_t iv = 0;
      double fv = 0.0;
      builders_->ArrayLoad(addr, idx, op->kind, &iv, &fv);
      slots[op->dst] = op->float_kind ? Value::F64(fv) : Value::I64(iv);
    } else {
      int64_t len = NativeReadI32(addr);
      if (idx < 0 || idx >= len) {
        GERENUK_CHECK(false) << "native array index " << idx << " out of bounds [0," << len
                             << ")";
      }
      int64_t off = 4 + idx * FieldKindSize(op->kind);
      slots[op->dst] = op->float_kind ? Value::F64(NativeReadFloat(addr, off, op->kind))
                                      : Value::I64(NativeReadInt(addr, off, op->kind));
    }
    NEXT();
  }
  OP(kNativeArrayStore) {
    int64_t addr = slots[op->a].i;
    if (!IsBuilderAddr(addr)) {
      throw SerAbort{AbortReason::kDisruptNativeSpace,
                     "array store into committed input record"};
    }
    if (op->float_kind) {
      builders_->ArrayStore(addr, slots[op->b].i, op->kind, 0, AsF(slots[op->c]));
    } else {
      builders_->ArrayStore(addr, slots[op->b].i, op->kind, slots[op->c].i, 0.0);
    }
    NEXT();
  }
  OP(kNativeArrayElemAddr) {
    int64_t addr = slots[op->a].i;
    int64_t idx = slots[op->b].i;
    slots[op->dst] = Value::Addr(IsBuilderAddr(addr)
                                     ? builders_->ElementAddr(addr, idx)
                                     : CommittedArrayElemAddr(*layouts_, op->klass, addr, idx));
    NEXT();
  }
  OP(kAppendRecord) {
    slots[op->dst] = Value::Addr(builders_->NewRecord(op->klass));
    NEXT();
  }
  OP(kAppendArray) {
    slots[op->dst] = Value::Addr(builders_->NewArray(op->klass, slots[op->a].i));
    NEXT();
  }
  OP(kAttachField) {
    int64_t addr = slots[op->a].i;
    if (!IsBuilderAddr(addr)) {
      throw SerAbort{AbortReason::kDisruptNativeSpace,
                     "reference write into committed input record"};
    }
    builders_->AttachField(addr, op->field_index, slots[op->b].i);
    NEXT();
  }
  OP(kAttachElement) {
    int64_t addr = slots[op->a].i;
    if (!IsBuilderAddr(addr)) {
      throw SerAbort{AbortReason::kDisruptNativeSpace,
                     "reference element write into committed input record"};
    }
    builders_->AttachElement(addr, slots[op->b].i, slots[op->c].i);
    NEXT();
  }
  OP(kAbort) {
    throw SerAbort{op->abort_reason, "static abort fence reached in " + pf.src->name};
  }
  OP(kBinOpBranch) {
    slots[op->dst] = EvalBin(op->binop, slots[op->a], slots[op->b]);
    if (slots[op->c].AsBool()) {
      JUMP(op->target);
    }
    NEXT();
  }
  OP(kNotBranch) {
    slots[op->dst] = Value::Bool(!slots[op->a].AsBool());
    if (slots[op->c].AsBool()) {
      JUMP(op->target);
    }
    NEXT();
  }
  OP(kBinOpJump) {
    slots[op->dst] = EvalBin(op->binop, slots[op->a], slots[op->b]);
    JUMP(op->target);
  }
  OP(kReadConstBin) {
    int64_t addr = slots[op->a].i;
    if (IsBuilderAddr(addr)) {
      int64_t iv = 0;
      double fv = 0.0;
      builders_->ReadField(addr, op->field_index, op->kind, &iv, &fv);
      slots[op->dst] = op->float_kind ? Value::F64(fv) : Value::I64(iv);
    } else {
      slots[op->dst] = op->float_kind
                           ? Value::F64(NativeReadFloat(addr, op->imm, op->kind))
                           : Value::I64(NativeReadInt(addr, op->imm, op->kind));
    }
    slots[op->dst2] = EvalBin(op->binop, slots[op->b], slots[op->c]);
    NEXT();
  }
  OP(kBinOpBin) {
    slots[op->dst] = EvalBin(op->binop, slots[op->a], slots[op->b]);
    slots[op->dst2] = EvalBin(static_cast<BinOpKind>(op->imm), slots[op->c], slots[op->d]);
    NEXT();
  }
  OP(kBinOpBinJump) {
    slots[op->dst] = EvalBin(op->binop, slots[op->a], slots[op->b]);
    slots[op->dst2] = EvalBin(static_cast<BinOpKind>(op->imm), slots[op->c], slots[op->d]);
    JUMP(op->target);
  }
#define RUN_BINOPS()                                                      \
  do {                                                                    \
    const int32_t* r = &args_pool[op->args_off];                          \
    const int32_t* const rend = r + op->args_len;                         \
    for (; r != rend; r += 4) {                                           \
      if (r[0] < 0) {                                                     \
        slots[r[3]] = Value::I64(r[1]);                                   \
      } else {                                                            \
        slots[r[3]] = EvalBin(static_cast<BinOpKind>(r[0]), slots[r[1]],  \
                              slots[r[2]]);                               \
      }                                                                   \
    }                                                                     \
  } while (0)
  OP(kBinOpRun) {
    RUN_BINOPS();
    NEXT();
  }
// For the branching run variants: all entries but the last through the run
// loop, the last one peeled so the condition — nearly always the last
// entry's result — can branch on the just-computed value instead of a
// store-then-reload of the condition slot.
#define RUN_BINOPS_PEEL(vlast, rlast)                                     \
  const int32_t* r = &args_pool[op->args_off];                            \
  const int32_t* const rlast = r + op->args_len - 4;                      \
  for (; r != rlast; r += 4) {                                            \
    if (r[0] < 0) {                                                       \
      slots[r[3]] = Value::I64(r[1]);                                     \
    } else {                                                              \
      slots[r[3]] = EvalBin(static_cast<BinOpKind>(r[0]), slots[r[1]],    \
                            slots[r[2]]);                                 \
    }                                                                     \
  }                                                                       \
  const Value vlast =                                                     \
      rlast[0] < 0 ? Value::I64(rlast[1])                                 \
                   : EvalBin(static_cast<BinOpKind>(rlast[0]),            \
                             slots[rlast[1]], slots[rlast[2]]);           \
  slots[rlast[3]] = vlast
  OP(kBinOpRunBranch) {
    RUN_BINOPS_PEEL(v, rl);
    if (rl[3] == op->c ? v.AsBool() : slots[op->c].AsBool()) {
      JUMP(op->target);
    }
    NEXT();
  }
  OP(kBinOpRunJump) {
    RUN_BINOPS();
    JUMP(op->target);
  }
  OP(kBranchElse) {
    JUMP(slots[op->a].AsBool() ? op->target : op->target2);
  }
  OP(kBinOpBranchElse) {
    slots[op->dst] = EvalBin(op->binop, slots[op->a], slots[op->b]);
    JUMP(slots[op->c].AsBool() ? op->target : op->target2);
  }
  OP(kBinOpRunBranchElse) {
    RUN_BINOPS_PEEL(v, rl);
    JUMP((rl[3] == op->c ? v.AsBool() : slots[op->c].AsBool()) ? op->target
                                                               : op->target2);
  }
#undef RUN_BINOPS
#undef RUN_BINOPS_PEEL

  // --- Vectorized tier -----------------------------------------------------
  // A [kVecLoopBegin .. kVecLoopEnd] block executes one strip (up to
  // vector_batch_size iterations) of a counted loop per dispatch cycle. All
  // side effects are transactional: slot write-backs and builder scatters
  // happen only in kVecLoopEnd, so any body op can bail (JUMP to op->target2,
  // the scalar loop head) and the scalar path replays the strip from
  // untouched state — faults, SerAborts, and results stay byte-identical to
  // the scalar/interpreter execution.
  OP(kVecLoopBegin) {
    const Value iv = slots[op->a];
    const Value lv = slots[op->b];
    if (iv.tag != ValueTag::kI64 || lv.tag != ValueTag::kI64) {
      JUMP(op->target2);  // dynamic tags the lowering did not anticipate
    }
    if (lv.i - iv.i <= 0) {
      // Loop exhausted: mirror the scalar head (compare, then branch out).
      slots[op->d] = Value::Bool(true);
      auto it = vec_states_.find(op);
      if (it != vec_states_.end()) {
        it->second->strips_done = 0;
      }
      JUMP(op->target);
    }
    VecState* stp = VecStateFor(*op, plan.vector_batch_size(), op->c,
                                static_cast<int32_t>(op->imm));
    const int64_t bail_after = plan.vec_bail_after_strips();
    if (bail_after >= 0 && stp->strips_done >= bail_after) {
      stp->strips_done = 0;  // test knob: hand the rest to the scalar loop
      JUMP(op->target2);
    }
    VecState& st = *stp;
    const int64_t rem = lv.i - iv.i;
    const int32_t n =
        rem < static_cast<int64_t>(st.cap) ? static_cast<int32_t>(rem) : st.cap;
    st.base = iv.i;
    st.n = n;
    st.sel_len = n;
    st.sel_dense = true;
    std::fill(st.col_last.begin(), st.col_last.end(), -1);
    std::fill(st.scan_valid.begin(), st.scan_valid.end(), 0);
    st.pending_count = 0;
    int64_t* GERENUK_RESTRICT ind = st.col[static_cast<size_t>(op->dst)];
    for (int32_t j = 0; j < n; ++j) {
      ind[j] = iv.i + j;
    }
    st.col_tag[static_cast<size_t>(op->dst)] = ValueTag::kI64;
    st.col_last[static_cast<size_t>(op->dst)] = n - 1;
    vec_cur_ = stp;
    NEXT();
  }
  OP(kVecBinOp) {
    VecState& st = *vec_cur_;
    if (st.sel_len > 0) {
      opcount.n += st.sel_len - 1;  // per-element accounting (lanes, not ops)
      if constexpr (kProfiled) {
        profile_->dispatches[static_cast<size_t>(op->code)] += st.sel_len - 1;
      }
      if (!VecBinOpLanes(st, *op, slots)) {
        JUMP(op->target2);
      }
    }
    NEXT();
  }
  OP(kVecUnOp) {
    VecState& st = *vec_cur_;
    if (st.sel_len > 0) {
      opcount.n += st.sel_len - 1;
      if constexpr (kProfiled) {
        profile_->dispatches[static_cast<size_t>(op->code)] += st.sel_len - 1;
      }
      if (!VecUnOpLanes(st, *op, slots)) {
        JUMP(op->target2);
      }
    }
    NEXT();
  }
  OP(kVecScan) {
    VecState& st = *vec_cur_;
    if (st.sel_len > 0) {
      opcount.n += st.sel_len - 1;
      if constexpr (kProfiled) {
        profile_->dispatches[static_cast<size_t>(op->code)] += st.sel_len - 1;
      }
      if (!VecScanLanes(st, *op, slots)) {
        JUMP(op->target2);
      }
    }
    NEXT();
  }
  OP(kVecReadCol) {
    VecState& st = *vec_cur_;
    if (st.sel_len > 0) {
      opcount.n += st.sel_len - 1;
      if constexpr (kProfiled) {
        profile_->dispatches[static_cast<size_t>(op->code)] += st.sel_len - 1;
      }
      if (!VecReadColLanes(st, *op, slots)) {
        JUMP(op->target2);
      }
    }
    NEXT();
  }
  OP(kVecWriteCol) {
    VecState& st = *vec_cur_;
    if (st.sel_len > 0) {
      opcount.n += st.sel_len - 1;
      if constexpr (kProfiled) {
        profile_->dispatches[static_cast<size_t>(op->code)] += st.sel_len - 1;
      }
      if (!VecWriteColPrepare(st, *op, slots, args_pool)) {
        JUMP(op->target2);
      }
    }
    NEXT();
  }
  OP(kVecFilter) {
    VecState& st = *vec_cur_;
    if (st.sel_len > 0) {
      opcount.n += st.sel_len - 1;
      if constexpr (kProfiled) {
        profile_->dispatches[static_cast<size_t>(op->code)] += st.sel_len - 1;
      }
      VecFilterLanes(st, *op, slots);
    }
    NEXT();
  }
  OP(kVecLoopEnd) {
    VecState& st = *vec_cur_;
    VecCommitStrip(st, *op, slots, args_pool);
    st.strips_done += 1;
    JUMP(op->target);  // back to kVecLoopBegin for the next strip
  }

#ifndef GERENUK_COMPUTED_GOTO
      case PlanOpCode::kCount:
        GERENUK_CHECK(false);
    }
  }
#endif
#undef OP
#undef NEXT
#undef JUMP
#ifdef PROFILE_OP
#undef PROFILE_OP
#endif
}

// Both instantiations live in this TU: Invoke selects at call time, kCall
// recursion stays within the caller's instantiation.
template Value PlanExecutor::Execute<false>(Frame& frame);
template Value PlanExecutor::Execute<true>(Frame& frame);

void PlanExecutor::ProfileSample(size_t code) {
  // One steady_clock read per `stride` dispatches: the elapsed nanos since
  // the previous sample are attributed wholesale to the opcode observed at
  // the sampling point — the standard sampling-profiler estimator (an op's
  // share of samples converges to its share of time).
  int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count();
  profile_->sampled_nanos[code] += now - profile_prev_ns_;
  profile_->samples += 1;
  profile_prev_ns_ = now;
  profile_countdown_ = profile_stride_;
}

std::unique_ptr<SerRunner> MakeFastRunner(const SerPlan* plan, const SerProgram& program,
                                          Heap& heap, const WellKnown& wk,
                                          const DataStructAnalyzer* layouts,
                                          BuilderStore* builders,
                                          const std::vector<const SerPlan*>& extra_plans) {
  if (plan == nullptr) {
    return std::make_unique<Interpreter>(program, heap, wk, layouts, builders);
  }
  auto exec = std::make_unique<PlanExecutor>(*plan, heap, wk, layouts, builders);
  for (const SerPlan* extra : extra_plans) {
    if (extra != nullptr) {
      exec->AddPlan(*extra);
    }
  }
  return exec;
}

}  // namespace gerenuk
