#include "src/exec/interpreter.h"

#include <cmath>

namespace gerenuk {

uint64_t HashBytes(const uint8_t* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ data[i]) * 1099511628211ULL;
  }
  return h;
}

Interpreter::Interpreter(const SerProgram& program, Heap& heap, const WellKnown& wk,
                         const DataStructAnalyzer* layouts, BuilderStore* builders)
    : program_(program), heap_(heap), wk_(wk), layouts_(layouts), builders_(builders) {
  heap_.AddRootProvider(this);
}

Interpreter::~Interpreter() { heap_.RemoveRootProvider(this); }

void Interpreter::VisitRoots(const std::function<void(ObjRef*)>& visit) {
  for (size_t f = 0; f < active_frames_; ++f) {
    for (Value& value : frame_pool_[f]->slots) {
      if (value.tag == ValueTag::kRef && value.i != 0) {
        // Value::i and ObjRef are both 64-bit; the GC may rewrite the slot.
        visit(reinterpret_cast<ObjRef*>(&value.i));
      }
    }
  }
}

Interpreter::Frame* Interpreter::AcquireFrame(const Function* func) {
  if (active_frames_ == frame_pool_.size()) {
    frame_pool_.push_back(std::make_unique<Frame>());
  }
  Frame* frame = frame_pool_[active_frames_++].get();
  frame->func = func;
  frame->slots.assign(func->vars.size(), Value());
  return frame;
}

void Interpreter::ReleaseFrame() { active_frames_ -= 1; }

Value Interpreter::CallFunction(const Function* func, const std::vector<Value>& args) {
  GERENUK_CHECK_EQ(static_cast<int>(args.size()), func->num_params);
  Frame* frame = AcquireFrame(func);
  for (size_t i = 0; i < args.size(); ++i) {
    frame->slots[i] = args[i];
  }
  Value result;
  try {
    result = Execute(*frame);
  } catch (...) {
    ReleaseFrame();
    throw;
  }
  ReleaseFrame();
  return result;
}

Value Interpreter::Execute(Frame& frame) {
  const Function& func = *frame.func;
  std::vector<Value>& slots = frame.slots;
  size_t pc = 0;
  auto as_i = [&slots](int var) { return slots[var].i; };
  auto as_f = [&slots](int var) {
    const Value& v = slots[var];
    return v.tag == ValueTag::kF64 ? v.d : static_cast<double>(v.i);
  };

  while (pc < func.body.size()) {
    const Statement& s = func.body[pc];
    statements_executed_ += 1;
    switch (s.op) {
      case Op::kConst:
        slots[s.dst] = s.imm;
        break;
      case Op::kAssign:
        slots[s.dst] = slots[s.a];
        break;
      case Op::kBinOp: {
        const Value& a = slots[s.a];
        const Value& b = slots[s.b];
        bool is_float = a.tag == ValueTag::kF64 || b.tag == ValueTag::kF64;
        if (is_float) {
          double x = as_f(s.a);
          double y = as_f(s.b);
          switch (s.binop) {
            case BinOpKind::kAdd: slots[s.dst] = Value::F64(x + y); break;
            case BinOpKind::kSub: slots[s.dst] = Value::F64(x - y); break;
            case BinOpKind::kMul: slots[s.dst] = Value::F64(x * y); break;
            case BinOpKind::kDiv: slots[s.dst] = Value::F64(x / y); break;
            case BinOpKind::kRem: slots[s.dst] = Value::F64(std::fmod(x, y)); break;
            case BinOpKind::kLt: slots[s.dst] = Value::Bool(x < y); break;
            case BinOpKind::kLe: slots[s.dst] = Value::Bool(x <= y); break;
            case BinOpKind::kGt: slots[s.dst] = Value::Bool(x > y); break;
            case BinOpKind::kGe: slots[s.dst] = Value::Bool(x >= y); break;
            case BinOpKind::kEq: slots[s.dst] = Value::Bool(x == y); break;
            case BinOpKind::kNe: slots[s.dst] = Value::Bool(x != y); break;
            case BinOpKind::kMin: slots[s.dst] = Value::F64(x < y ? x : y); break;
            case BinOpKind::kMax: slots[s.dst] = Value::F64(x > y ? x : y); break;
            default:
              GERENUK_CHECK(false) << "bitwise binop on floats";
          }
        } else {
          int64_t x = a.i;
          int64_t y = b.i;
          switch (s.binop) {
            case BinOpKind::kAdd: slots[s.dst] = Value::I64(x + y); break;
            case BinOpKind::kSub: slots[s.dst] = Value::I64(x - y); break;
            case BinOpKind::kMul: slots[s.dst] = Value::I64(x * y); break;
            case BinOpKind::kDiv:
              GERENUK_CHECK_NE(y, 0);
              slots[s.dst] = Value::I64(x / y);
              break;
            case BinOpKind::kRem:
              GERENUK_CHECK_NE(y, 0);
              slots[s.dst] = Value::I64(x % y);
              break;
            case BinOpKind::kLt: slots[s.dst] = Value::Bool(x < y); break;
            case BinOpKind::kLe: slots[s.dst] = Value::Bool(x <= y); break;
            case BinOpKind::kGt: slots[s.dst] = Value::Bool(x > y); break;
            case BinOpKind::kGe: slots[s.dst] = Value::Bool(x >= y); break;
            case BinOpKind::kEq: slots[s.dst] = Value::Bool(x == y); break;
            case BinOpKind::kNe: slots[s.dst] = Value::Bool(x != y); break;
            case BinOpKind::kAnd: slots[s.dst] = Value::I64(x & y); break;
            case BinOpKind::kOr: slots[s.dst] = Value::I64(x | y); break;
            case BinOpKind::kXor: slots[s.dst] = Value::I64(x ^ y); break;
            case BinOpKind::kShl: slots[s.dst] = Value::I64(x << y); break;
            case BinOpKind::kShr: slots[s.dst] = Value::I64(x >> y); break;
            case BinOpKind::kMin: slots[s.dst] = Value::I64(x < y ? x : y); break;
            case BinOpKind::kMax: slots[s.dst] = Value::I64(x > y ? x : y); break;
          }
        }
        break;
      }
      case Op::kUnOp:
        switch (s.unop) {
          case UnOpKind::kNeg:
            slots[s.dst] = slots[s.a].tag == ValueTag::kF64 ? Value::F64(-slots[s.a].d)
                                                            : Value::I64(-slots[s.a].i);
            break;
          case UnOpKind::kNot:
            slots[s.dst] = Value::Bool(!slots[s.a].AsBool());
            break;
          case UnOpKind::kI2F:
            slots[s.dst] = Value::F64(static_cast<double>(slots[s.a].i));
            break;
          case UnOpKind::kF2I:
            slots[s.dst] = Value::I64(static_cast<int64_t>(as_f(s.a)));
            break;
        }
        break;

      // ---- original (heap) data operations ----
      case Op::kDeserialize:
        GERENUK_CHECK(channel_ != nullptr && channel_->next_heap_record);
        slots[s.dst] = Value::Ref(static_cast<int64_t>(channel_->next_heap_record()));
        break;
      case Op::kSerialize:
        GERENUK_CHECK(channel_ != nullptr && channel_->emit_heap_record);
        channel_->emit_heap_record(static_cast<ObjRef>(slots[s.a].i), s.klass);
        break;
      case Op::kFieldLoad: {
        const FieldInfo& field = s.klass->field(s.field_index);
        ObjRef obj = static_cast<ObjRef>(slots[s.a].i);
        switch (field.kind) {
          case FieldKind::kBool:
          case FieldKind::kI8:
            slots[s.dst] = Value::I64(heap_.GetPrim<int8_t>(obj, field.offset));
            break;
          case FieldKind::kI16:
          case FieldKind::kChar:
            slots[s.dst] = Value::I64(heap_.GetPrim<int16_t>(obj, field.offset));
            break;
          case FieldKind::kI32:
            slots[s.dst] = Value::I64(heap_.GetPrim<int32_t>(obj, field.offset));
            break;
          case FieldKind::kI64:
            slots[s.dst] = Value::I64(heap_.GetPrim<int64_t>(obj, field.offset));
            break;
          case FieldKind::kF32:
            slots[s.dst] = Value::F64(heap_.GetPrim<float>(obj, field.offset));
            break;
          case FieldKind::kF64:
            slots[s.dst] = Value::F64(heap_.GetPrim<double>(obj, field.offset));
            break;
          case FieldKind::kRef:
            slots[s.dst] = Value::Ref(static_cast<int64_t>(heap_.GetRef(obj, field.offset)));
            break;
        }
        break;
      }
      case Op::kFieldStore: {
        const FieldInfo& field = s.klass->field(s.field_index);
        ObjRef obj = static_cast<ObjRef>(slots[s.a].i);
        switch (field.kind) {
          case FieldKind::kBool:
          case FieldKind::kI8:
            heap_.SetPrim<int8_t>(obj, field.offset, static_cast<int8_t>(as_i(s.b)));
            break;
          case FieldKind::kI16:
          case FieldKind::kChar:
            heap_.SetPrim<int16_t>(obj, field.offset, static_cast<int16_t>(as_i(s.b)));
            break;
          case FieldKind::kI32:
            heap_.SetPrim<int32_t>(obj, field.offset, static_cast<int32_t>(as_i(s.b)));
            break;
          case FieldKind::kI64:
            heap_.SetPrim<int64_t>(obj, field.offset, as_i(s.b));
            break;
          case FieldKind::kF32:
            heap_.SetPrim<float>(obj, field.offset, static_cast<float>(as_f(s.b)));
            break;
          case FieldKind::kF64:
            heap_.SetPrim<double>(obj, field.offset, as_f(s.b));
            break;
          case FieldKind::kRef:
            heap_.SetRef(obj, field.offset, static_cast<ObjRef>(slots[s.b].i));
            break;
        }
        break;
      }
      case Op::kArrayLoad: {
        ObjRef arr = static_cast<ObjRef>(slots[s.a].i);
        int64_t idx = as_i(s.b);
        switch (s.elem_kind) {
          case FieldKind::kBool:
          case FieldKind::kI8:
            slots[s.dst] = Value::I64(heap_.AGet<int8_t>(arr, idx));
            break;
          case FieldKind::kI16:
          case FieldKind::kChar:
            slots[s.dst] = Value::I64(heap_.AGet<int16_t>(arr, idx));
            break;
          case FieldKind::kI32:
            slots[s.dst] = Value::I64(heap_.AGet<int32_t>(arr, idx));
            break;
          case FieldKind::kI64:
            slots[s.dst] = Value::I64(heap_.AGet<int64_t>(arr, idx));
            break;
          case FieldKind::kF32:
            slots[s.dst] = Value::F64(heap_.AGet<float>(arr, idx));
            break;
          case FieldKind::kF64:
            slots[s.dst] = Value::F64(heap_.AGet<double>(arr, idx));
            break;
          case FieldKind::kRef:
            slots[s.dst] = Value::Ref(static_cast<int64_t>(heap_.AGetRef(arr, idx)));
            break;
        }
        break;
      }
      case Op::kArrayStore: {
        ObjRef arr = static_cast<ObjRef>(slots[s.a].i);
        int64_t idx = as_i(s.b);
        switch (s.elem_kind) {
          case FieldKind::kBool:
          case FieldKind::kI8:
            heap_.ASet<int8_t>(arr, idx, static_cast<int8_t>(as_i(s.c)));
            break;
          case FieldKind::kI16:
          case FieldKind::kChar:
            heap_.ASet<int16_t>(arr, idx, static_cast<int16_t>(as_i(s.c)));
            break;
          case FieldKind::kI32:
            heap_.ASet<int32_t>(arr, idx, static_cast<int32_t>(as_i(s.c)));
            break;
          case FieldKind::kI64:
            heap_.ASet<int64_t>(arr, idx, as_i(s.c));
            break;
          case FieldKind::kF32:
            heap_.ASet<float>(arr, idx, static_cast<float>(as_f(s.c)));
            break;
          case FieldKind::kF64:
            heap_.ASet<double>(arr, idx, as_f(s.c));
            break;
          case FieldKind::kRef:
            heap_.ASetRef(arr, idx, static_cast<ObjRef>(slots[s.c].i));
            break;
        }
        break;
      }
      case Op::kArrayLength:
        slots[s.dst] = Value::I64(heap_.ArrayLength(static_cast<ObjRef>(slots[s.a].i)));
        break;
      case Op::kNewObject:
        slots[s.dst] = Value::Ref(static_cast<int64_t>(heap_.AllocObject(s.klass)));
        break;
      case Op::kNewArray:
        slots[s.dst] = Value::Ref(static_cast<int64_t>(heap_.AllocArray(s.klass, as_i(s.a))));
        break;

      // ---- calls & control flow ----
      case Op::kCall: {
        std::vector<Value> args;
        args.reserve(s.args.size());
        for (int arg : s.args) {
          args.push_back(slots[arg]);
        }
        Value result = CallFunction(program_.function(s.func), args);
        if (s.dst >= 0) {
          slots[s.dst] = result;
        }
        break;
      }
      case Op::kCallNative: {
        Value result = RunIntrinsic(s, frame);
        if (s.dst >= 0) {
          slots[s.dst] = result;
        }
        break;
      }
      case Op::kMonitorEnter:
      case Op::kMonitorExit:
        break;  // single executor per task: monitors are uncontended no-ops
      case Op::kBranch:
        if (slots[s.a].AsBool()) {
          GERENUK_CHECK_LT(static_cast<size_t>(s.label), func.label_index.size());
          pc = static_cast<size_t>(func.label_index[s.label]);
        }
        break;
      case Op::kJump:
        GERENUK_CHECK_LT(static_cast<size_t>(s.label), func.label_index.size());
        pc = static_cast<size_t>(func.label_index[s.label]);
        break;
      case Op::kLabel:
        break;
      case Op::kReturn:
        return s.a >= 0 ? slots[s.a] : Value::None();

      // ---- transformed (native) operations ----
      case Op::kGetAddress:
        GERENUK_CHECK(channel_ != nullptr && channel_->next_native_record);
        slots[s.dst] = Value::Addr(channel_->next_native_record());
        break;
      case Op::kGWriteObject:
        GERENUK_CHECK(channel_ != nullptr && channel_->emit_native_record);
        channel_->emit_native_record(slots[s.a].i, s.klass);
        break;
      case Op::kReadNative: {
        int64_t addr = slots[s.a].i;
        if (IsBuilderAddr(addr)) {
          int64_t iv = 0;
          double fv = 0.0;
          builders_->ReadField(addr, s.field_index, s.elem_kind, &iv, &fv);
          slots[s.dst] = (s.elem_kind == FieldKind::kF32 || s.elem_kind == FieldKind::kF64)
                             ? Value::F64(fv)
                             : Value::I64(iv);
        } else {
          // Algorithm 1 distinguishes statically-known offsets from symbolic
          // ones; the former compile to a direct read.
          int64_t off = s.expr_is_const ? s.expr_const_offset
                                        : ResolveOffset(layouts_->pool(), s.expr_id, addr);
          slots[s.dst] = (s.elem_kind == FieldKind::kF32 || s.elem_kind == FieldKind::kF64)
                             ? Value::F64(NativeReadFloat(addr, off, s.elem_kind))
                             : Value::I64(NativeReadInt(addr, off, s.elem_kind));
        }
        break;
      }
      case Op::kWriteNative: {
        int64_t addr = slots[s.a].i;
        if (!IsBuilderAddr(addr)) {
          // Writing into a committed (input) record would corrupt the
          // immutable input buffers the re-execution depends on: abort.
          throw SerAbort{AbortReason::kDisruptNativeSpace,
                         "writeNative on committed input record"};
        }
        if (s.elem_kind == FieldKind::kF32 || s.elem_kind == FieldKind::kF64) {
          builders_->WriteField(addr, s.field_index, s.elem_kind, 0, as_f(s.b));
        } else {
          builders_->WriteField(addr, s.field_index, s.elem_kind, as_i(s.b), 0.0);
        }
        break;
      }
      case Op::kAddrOfField: {
        int64_t addr = slots[s.a].i;
        if (IsBuilderAddr(addr)) {
          slots[s.dst] = Value::Addr(builders_->FieldAddr(addr, s.field_index));
        } else {
          int64_t off = s.expr_is_const ? s.expr_const_offset
                                        : ResolveOffset(layouts_->pool(), s.expr_id, addr);
          slots[s.dst] = Value::Addr(addr + off);
        }
        break;
      }
      case Op::kNativeArrayLength: {
        int64_t addr = slots[s.a].i;
        slots[s.dst] = Value::I64(IsBuilderAddr(addr) ? builders_->ArrayLength(addr)
                                                      : NativeReadI32(addr));
        break;
      }
      case Op::kNativeArrayLoad: {
        int64_t addr = slots[s.a].i;
        int64_t idx = as_i(s.b);
        if (IsBuilderAddr(addr)) {
          int64_t iv = 0;
          double fv = 0.0;
          builders_->ArrayLoad(addr, idx, s.elem_kind, &iv, &fv);
          slots[s.dst] = (s.elem_kind == FieldKind::kF32 || s.elem_kind == FieldKind::kF64)
                             ? Value::F64(fv)
                             : Value::I64(iv);
        } else {
          int64_t len = NativeReadI32(addr);
          if (idx < 0 || idx >= len) {
            GERENUK_CHECK(false) << "native array index " << idx << " out of bounds [0," << len
                                 << ")";
          }
          int64_t off = 4 + idx * FieldKindSize(s.elem_kind);
          slots[s.dst] = (s.elem_kind == FieldKind::kF32 || s.elem_kind == FieldKind::kF64)
                             ? Value::F64(NativeReadFloat(addr, off, s.elem_kind))
                             : Value::I64(NativeReadInt(addr, off, s.elem_kind));
        }
        break;
      }
      case Op::kNativeArrayStore: {
        int64_t addr = slots[s.a].i;
        if (!IsBuilderAddr(addr)) {
          throw SerAbort{AbortReason::kDisruptNativeSpace,
                         "array store into committed input record"};
        }
        if (s.elem_kind == FieldKind::kF32 || s.elem_kind == FieldKind::kF64) {
          builders_->ArrayStore(addr, as_i(s.b), s.elem_kind, 0, as_f(s.c));
        } else {
          builders_->ArrayStore(addr, as_i(s.b), s.elem_kind, as_i(s.c), 0.0);
        }
        break;
      }
      case Op::kNativeArrayElemAddr: {
        int64_t addr = slots[s.a].i;
        int64_t idx = as_i(s.b);
        slots[s.dst] = Value::Addr(IsBuilderAddr(addr)
                                       ? builders_->ElementAddr(addr, idx)
                                       : CommittedArrayElemAddr(*layouts_, s.klass, addr, idx));
        break;
      }
      case Op::kAppendRecord:
        slots[s.dst] = Value::Addr(builders_->NewRecord(s.klass));
        break;
      case Op::kAppendArray:
        slots[s.dst] = Value::Addr(builders_->NewArray(s.klass, as_i(s.a)));
        break;
      case Op::kAttachField: {
        int64_t addr = slots[s.a].i;
        if (!IsBuilderAddr(addr)) {
          throw SerAbort{AbortReason::kDisruptNativeSpace,
                         "reference write into committed input record"};
        }
        builders_->AttachField(addr, s.field_index, slots[s.b].i);
        break;
      }
      case Op::kAttachElement: {
        int64_t addr = slots[s.a].i;
        if (!IsBuilderAddr(addr)) {
          throw SerAbort{AbortReason::kDisruptNativeSpace,
                         "reference element write into committed input record"};
        }
        builders_->AttachElement(addr, as_i(s.b), slots[s.c].i);
        break;
      }
      case Op::kAbort:
        throw SerAbort{s.abort_reason, "static abort fence reached in " + func.name};
    }
    ++pc;
  }
  return Value::None();
}

int64_t ReadStringValueBytes(BuilderStore* builders, const WellKnown& wk, Value v,
                             std::string* out) {
  if (v.tag == ValueTag::kAddr) {
    int64_t addr = v.i;
    if (IsBuilderAddr(addr)) {
      // An under-construction string: its byte-array child holds the chars.
      const uint8_t* data = nullptr;
      int64_t len = 0;
      if (builders->TryGetStringBytes(addr, &data, &len)) {
        out->assign(reinterpret_cast<const char*>(data), static_cast<size_t>(len));
        return len;
      }
      const Klass* klass = builders->KlassOf(addr);
      ByteBuffer bytes;
      builders->RenderBody(addr, klass, bytes);
      ByteReader reader(bytes.bytes());
      int32_t count = reader.ReadI32();
      out->assign(reinterpret_cast<const char*>(bytes.data() + 4), static_cast<size_t>(count));
      return count;
    }
    int32_t len = NativeReadI32(addr);
    out->assign(reinterpret_cast<const char*>(addr + 4), static_cast<size_t>(len));
    return len;
  }
  GERENUK_CHECK(v.tag == ValueTag::kRef);
  *out = wk.GetString(static_cast<ObjRef>(v.i));
  return static_cast<int64_t>(out->size());
}

int64_t Interpreter::ReadStringBytes(Value v, std::string* out) {
  return ReadStringValueBytes(builders_, wk_, v, out);
}

Value Interpreter::RunIntrinsic(const Statement& s, Frame& frame) {
  std::vector<Value>& slots = frame.slots;
  const std::string& name = s.native_name;
  auto arg_f = [&slots, &s](size_t i) {
    const Value& v = slots[s.args[i]];
    return v.tag == ValueTag::kF64 ? v.d : static_cast<double>(v.i);
  };
  // Math natives take primitive arguments only, so they never carry taint
  // and are legal on both paths (like the JVM's Math.* intrinsics).
  if (name == "exp") {
    return Value::F64(std::exp(arg_f(0)));
  }
  if (name == "log") {
    return Value::F64(std::log(arg_f(0)));
  }
  if (name == "sqrt") {
    return Value::F64(std::sqrt(arg_f(0)));
  }
  if (name == "abs") {
    return Value::F64(std::fabs(arg_f(0)));
  }
  if (name == "stringLength") {
    std::string text;
    ReadStringBytes(slots[s.args[0]], &text);
    return Value::I64(static_cast<int64_t>(text.size()));
  }
  if (name == "stringHash" || name == "hashCode") {
    std::string text;
    ReadStringBytes(slots[s.args[0]], &text);
    return Value::I64(static_cast<int64_t>(
        HashBytes(reinterpret_cast<const uint8_t*>(text.data()), text.size())));
  }
  if (name == "stringEquals") {
    std::string a;
    std::string b;
    ReadStringBytes(slots[s.args[0]], &a);
    ReadStringBytes(slots[s.args[1]], &b);
    return Value::Bool(a == b);
  }
  if (name == "stringCompare") {
    std::string a;
    std::string b;
    ReadStringBytes(slots[s.args[0]], &a);
    ReadStringBytes(slots[s.args[1]], &b);
    return Value::I64(a.compare(b));
  }
  GERENUK_CHECK(false) << "no runtime implementation for native method " << name;
  return Value::None();
}

}  // namespace gerenuk
