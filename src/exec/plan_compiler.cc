#include "src/exec/plan_compiler.h"

#include <algorithm>
#include <map>
#include <utility>

namespace gerenuk {

namespace {

Intrinsic ResolveIntrinsic(const std::string& name) {
  if (name == "exp") return Intrinsic::kExp;
  if (name == "log") return Intrinsic::kLog;
  if (name == "sqrt") return Intrinsic::kSqrt;
  if (name == "abs") return Intrinsic::kAbs;
  if (name == "stringLength") return Intrinsic::kStringLength;
  if (name == "stringHash" || name == "hashCode") return Intrinsic::kStringHash;
  if (name == "stringEquals") return Intrinsic::kStringEquals;
  if (name == "stringCompare") return Intrinsic::kStringCompare;
  return Intrinsic::kUnknown;
}

// Flattens one symbolic SizeExpr into a post-order FlatStep run: children
// land before parents, shared subexpressions are emitted once, zero-scale
// terms are dropped (the constant-folding pass proves them dead). The run's
// last step is the expression itself.
class Flattener {
 public:
  explicit Flattener(const ExprPool& pool) : pool_(pool) {}

  bool Flatten(int expr_id, std::vector<FlatStep>* steps, std::vector<FlatTerm>* terms) {
    steps_.clear();
    terms_.clear();
    local_.clear();
    ok_ = true;
    Visit(expr_id);
    if (!ok_) {
      return false;
    }
    *steps = steps_;
    *terms = terms_;
    return true;
  }

 private:
  int Visit(int id) {
    auto it = local_.find(id);
    if (it != local_.end()) {
      return it->second;
    }
    const SizeExpr& expr = pool_.Get(id);
    std::vector<std::pair<int64_t, int>> children;
    for (const SizeExpr::Term& term : expr.terms) {
      if (term.scale == 0) {
        continue;
      }
      children.emplace_back(term.scale, Visit(term.length_at));
    }
    if (!ok_ || steps_.size() >= kMaxFlatSteps) {
      ok_ = false;
      return 0;
    }
    FlatStep step;
    step.constant = expr.constant;
    step.first_term = static_cast<int32_t>(terms_.size());
    step.num_terms = static_cast<int32_t>(children.size());
    for (const auto& child : children) {
      terms_.push_back(FlatTerm{child.first, static_cast<int32_t>(child.second)});
    }
    steps_.push_back(step);
    int idx = static_cast<int>(steps_.size()) - 1;
    local_[id] = idx;
    return idx;
  }

  const ExprPool& pool_;
  std::vector<FlatStep> steps_;
  std::vector<FlatTerm> terms_;
  std::unordered_map<int, int> local_;
  bool ok_ = true;
};

}  // namespace

class PlanBuilder {
 public:
  PlanBuilder(const SerProgram& program, const DataStructAnalyzer& layouts, SerPlan* plan,
              const PlanOptions& options)
      : program_(program),
        pool_(layouts.pool()),
        plan_(plan),
        options_(options),
        flattener_(pool_) {}

  void Build() {
    plan_->vector_batch_size_ = options_.vectorize ? options_.vector_batch_size : 0;
    plan_->vec_bail_after_strips_ = options_.vec_bail_after_strips;
    plan_->funcs_.resize(program_.functions.size());
    for (size_t i = 0; i < program_.functions.size(); ++i) {
      LowerFunction(*program_.functions[i], &plan_->funcs_[i]);
      plan_->by_fn_[program_.functions[i].get()] = i;
    }
    // Back-pointers only after the vector stops growing.
    for (PlanFunction& pf : plan_->funcs_) {
      pf.plan = plan_;
    }
    // Single-function programs (key/reduce/combine UDFs) have no stage body;
    // their functions are invoked by name through another runner's fn index.
    plan_->entry_ = program_.body != nullptr ? plan_->Lookup(program_.body) : nullptr;
    for (const PlanFunction& pf : plan_->funcs_) {
      for (const PlanOp& op : pf.ops) {
        plan_->op_counts_[static_cast<size_t>(op.code)] += 1;
        plan_->ops_total_ += 1;
      }
    }
  }

 private:
  // Offset resolution for kReadNative/kAddrOfField: fills the op's
  // const/sym fields and returns true when the offset folded to a constant.
  bool LowerOffset(const Statement& s, PlanOp* op) {
    int64_t folded = 0;
    if (s.expr_is_const) {
      op->imm = s.expr_const_offset;
      plan_->offsets_folded_ += 1;
      return true;
    }
    if (pool_.FoldedConstant(s.expr_id, &folded)) {
      op->imm = folded;
      plan_->offsets_folded_ += 1;
      return true;
    }
    plan_->offsets_symbolic_ += 1;
    op->expr_id = s.expr_id;
    auto cached = flat_cache_.find(s.expr_id);
    if (cached != flat_cache_.end()) {
      op->flat_off = cached->second.first;
      op->flat_len = cached->second.second;
      return false;
    }
    std::vector<FlatStep> steps;
    std::vector<FlatTerm> terms;
    if (flattener_.Flatten(s.expr_id, &steps, &terms)) {
      op->flat_off = static_cast<int32_t>(plan_->flat_steps_.size());
      op->flat_len = static_cast<int32_t>(steps.size());
      int32_t term_base = static_cast<int32_t>(plan_->flat_terms_.size());
      for (FlatStep& step : steps) {
        step.first_term += term_base;
        plan_->flat_steps_.push_back(step);
      }
      for (const FlatTerm& term : terms) {
        plan_->flat_terms_.push_back(term);
      }
    }
    // Overflowed expressions keep flat_off = -1: ResolveOffset fallback.
    flat_cache_[s.expr_id] = {op->flat_off, op->flat_len};
    return false;
  }

  void LowerFunction(const Function& func, PlanFunction* out) {
    out->src = &func;
    out->num_params = func.num_params;
    out->num_vars = static_cast<int>(func.vars.size());

    // Pass A: one PlanOp per statement (labels and monitors vanish), with
    // branch targets resolved through label_index into *op* indices. A
    // statement index maps to the first op emitted at or after it, so a
    // branch landing on a kLabel lands on the next real op — exactly the
    // interpreter's "jump to the no-op label, fall through" behavior.
    std::vector<PlanOp> ops;
    std::vector<int32_t> op_of_stmt(func.body.size() + 1, 0);
    for (size_t i = 0; i < func.body.size(); ++i) {
      op_of_stmt[i] = static_cast<int32_t>(ops.size());
      LowerStatement(func.body[i], out, &ops);
    }
    op_of_stmt[func.body.size()] = static_cast<int32_t>(ops.size());
    // Synthetic return: falling off the end yields None, and every branch
    // target past the last real op stays a valid op index.
    PlanOp ret;
    ret.code = PlanOpCode::kReturnVoid;
    ops.push_back(ret);

    for (PlanOp& op : ops) {
      if (op.target >= 0) {
        // During lowering, target temporarily holds a label id.
        GERENUK_CHECK_LT(static_cast<size_t>(op.target), func.label_index.size());
        op.target = op_of_stmt[static_cast<size_t>(func.label_index[op.target])];
      }
    }

    // Pass B: copy elimination. FunctionBuilder lowers every AssignTo as
    // `temp = <produce>; var = temp`; when nothing but that kAssign ever
    // reads the temp, the producer can write `var` directly and the copy
    // disappears. Handlers read all operands before writing dst, so the
    // rewrite is safe even when `var` is one of the producer's operands.
    {
      std::vector<char> leader(ops.size(), 0);
      for (const PlanOp& op : ops) {
        if (op.target >= 0) {
          leader[static_cast<size_t>(op.target)] = 1;
        }
      }
      // Reads per variable: a/b/c are operand reads whenever set, plus the
      // call/intrinsic argument pool. dst (and the not-yet-created dst2)
      // are writes.
      std::vector<int32_t> reads(static_cast<size_t>(out->num_vars), 0);
      auto count_read = [&reads](int32_t v) {
        if (v >= 0 && static_cast<size_t>(v) < reads.size()) {
          reads[static_cast<size_t>(v)] += 1;
        }
      };
      for (const PlanOp& op : ops) {
        count_read(op.a);
        count_read(op.b);
        count_read(op.c);
        for (int32_t j = 0; j < op.args_len; ++j) {
          count_read(out->args_pool[static_cast<size_t>(op.args_off + j)]);
        }
      }
      std::vector<PlanOp> pruned;
      pruned.reserve(ops.size());
      std::vector<int32_t> remap(ops.size() + 1, 0);
      size_t j = 0;
      while (j < ops.size()) {
        remap[j] = static_cast<int32_t>(pruned.size());
        if (j + 1 < ops.size() && !leader[j + 1]) {
          const PlanOp& x = ops[j];
          const PlanOp& y = ops[j + 1];
          if (y.code == PlanOpCode::kAssign && x.dst >= 0 && y.a == x.dst &&
              reads[static_cast<size_t>(x.dst)] == 1) {
            remap[j + 1] = static_cast<int32_t>(pruned.size());
            pruned.push_back(x);
            pruned.back().dst = y.dst;
            plan_->ops_copies_elided_ += 1;
            j += 2;
            continue;
          }
        }
        pruned.push_back(ops[j]);
        j += 1;
      }
      remap[ops.size()] = static_cast<int32_t>(pruned.size());
      for (PlanOp& op : pruned) {
        if (op.target >= 0) {
          op.target = remap[static_cast<size_t>(op.target)];
        }
        if (op.target2 >= 0) {
          op.target2 = remap[static_cast<size_t>(op.target2)];
        }
      }
      ops = std::move(pruned);
    }

    // Pass B1b: const hoisting. A kConst whose destination has no other
    // writer in the function always produces the same value, so it runs
    // once at function entry instead of (potentially) once per loop
    // iteration — FunctionBuilder materializes literals right before use,
    // which puts them inside loop bodies. Builder code always writes a
    // temp before reading it, so moving the single write earlier is
    // unobservable; param slots are excluded (the call writes those).
    {
      std::vector<int32_t> writes(static_cast<size_t>(out->num_vars), 0);
      for (const PlanOp& op : ops) {
        if (op.dst >= 0 && static_cast<size_t>(op.dst) < writes.size()) {
          writes[static_cast<size_t>(op.dst)] += 1;
        }
      }
      std::vector<char> hoist(ops.size(), 0);
      size_t num_hoisted = 0;
      for (size_t j = 0; j < ops.size(); ++j) {
        const PlanOp& op = ops[j];
        if (op.code == PlanOpCode::kConst && op.dst >= out->num_params &&
            writes[static_cast<size_t>(op.dst)] == 1) {
          hoist[j] = 1;
          ++num_hoisted;
        }
      }
      if (num_hoisted > 0) {
        std::vector<PlanOp> reordered;
        reordered.reserve(ops.size());
        for (size_t j = 0; j < ops.size(); ++j) {
          if (hoist[j]) {
            reordered.push_back(ops[j]);
          }
        }
        std::vector<int32_t> remap(ops.size() + 1, 0);
        for (size_t j = 0; j < ops.size(); ++j) {
          if (!hoist[j]) {
            remap[j] = static_cast<int32_t>(reordered.size());
            reordered.push_back(ops[j]);
          }
        }
        remap[ops.size()] = static_cast<int32_t>(reordered.size());
        // A branch that landed on a hoisted const lands on the next op
        // instead: the const already ran at entry, and re-running it would
        // be idempotent anyway.
        for (size_t j = ops.size(); j-- > 0;) {
          if (hoist[j]) {
            remap[j] = remap[j + 1];
          }
        }
        for (PlanOp& op : reordered) {
          if (op.target >= 0) {
            op.target = remap[static_cast<size_t>(op.target)];
          }
          if (op.target2 >= 0) {
            op.target2 = remap[static_cast<size_t>(op.target2)];
          }
        }
        ops = std::move(reordered);
      }
    }

    // Pass V: loop vectorization (between const hoisting, which it relies on
    // for step/invariant detection, and jump threading, which must then treat
    // the vec block as opaque). Each qualifying counted loop gets a strip-
    // mined vec block spliced in front of the untouched scalar loop; see
    // VectorizeLoops below for the qualification rules.
    if (options_.vectorize) {
      VectorizeLoops(&ops, out);
    }

    // Pass B2: jump threading. A kJump is replaced by a copy of a short
    // prefix of its target block (up to kThreadWindow ops) plus a jump to
    // the remainder — inlining the destination, so any prefix length is
    // semantically neutral. The payoff is structural: the old target often
    // stops being entered sideways (e.g. a bottom-test loop's condition
    // block and its loop-entry jump), which unblocks the run collapse and
    // fusion passes below.
    {
      constexpr size_t kThreadWindow = 3;
      // Vec ops count as control: a thread window must never copy into a
      // vec block (kVecLoopBegin..kVecLoopEnd is a contiguous unit whose
      // body ops are only reachable through their own Begin).
      auto is_control = [](PlanOpCode c) {
        return c == PlanOpCode::kJump || c == PlanOpCode::kBranch ||
               c == PlanOpCode::kReturn || c == PlanOpCode::kReturnVoid ||
               c == PlanOpCode::kAbort || IsVecOp(c);
      };
      auto is_unconditional = [](PlanOpCode c) {
        return c == PlanOpCode::kJump || c == PlanOpCode::kReturn ||
               c == PlanOpCode::kReturnVoid || c == PlanOpCode::kAbort;
      };
      std::vector<PlanOp> threaded;
      threaded.reserve(ops.size());
      std::vector<int32_t> remap(ops.size() + 1, 0);
      for (size_t j = 0; j < ops.size(); ++j) {
        remap[j] = static_cast<int32_t>(threaded.size());
        const PlanOp& op = ops[j];
        if (op.code == PlanOpCode::kJump) {
          size_t t = static_cast<size_t>(op.target);
          size_t end = t;  // one past the prefix to inline
          while (end < ops.size() && end - t < kThreadWindow &&
                 !is_control(ops[end].code)) {
            ++end;
          }
          // Thread only when the prefix reaches a control op inside the
          // window; otherwise the copy would end in a rejoin jump and save
          // no dispatches — pure code growth. A vec op is never copied:
          // duplicating a kVecLoopBegin would detach it from its body.
          if (end < ops.size() && end - t < kThreadWindow && !IsVecOp(ops[end].code)) {
            ++end;  // the control op itself is part of the prefix
            for (size_t m = t; m < end; ++m) {
              threaded.push_back(ops[m]);  // targets still in old indices
            }
            if (!is_unconditional(ops[end - 1].code)) {
              // The prefix ends in a conditional branch: its fall-through
              // must rejoin the original successor.
              PlanOp rejoin;
              rejoin.code = PlanOpCode::kJump;
              rejoin.target = static_cast<int32_t>(end);
              threaded.push_back(rejoin);
            }
            continue;
          }
        }
        threaded.push_back(op);
      }
      remap[ops.size()] = static_cast<int32_t>(threaded.size());
      for (PlanOp& op : threaded) {
        if (op.target >= 0) {
          op.target = remap[static_cast<size_t>(op.target)];
        }
        if (op.target2 >= 0) {
          op.target2 = remap[static_cast<size_t>(op.target2)];
        }
      }
      ops = std::move(threaded);
    }

    // Pass B3: collapse each maximal straight-line run of >= 3 consecutive
    // kBinOps (no branch landing inside it; landing on its head is fine)
    // into one kBinOpRun whose {kind, a, b, dst} entries live in args_pool.
    // Small integer kConsts join a run as immediate entries (kind -1) so a
    // loop-body constant doesn't split the chain. Every entry still stores
    // its destination in order, so the run is indistinguishable from the
    // unfused ops to any reader or to a branch that follows it.
    {
      std::vector<char> leader(ops.size(), 0);
      for (const PlanOp& op : ops) {
        if (op.target >= 0) {
          leader[static_cast<size_t>(op.target)] = 1;
        }
        // Vec blocks carry bail targets in target2 (the scalar loop head);
        // that head must stay addressable, so it leads a block here too.
        if (op.target2 >= 0) {
          leader[static_cast<size_t>(op.target2)] = 1;
        }
      }
      auto run_member = [](const PlanOp& op) {
        if (op.code == PlanOpCode::kBinOp) {
          return true;
        }
        // Value{kI64, v, 0.0} == Value::I64(v), so an int32-sized I64 const
        // is exactly an immediate entry.
        return op.code == PlanOpCode::kConst && op.imm_tag == ValueTag::kI64 &&
               op.imm >= INT32_MIN && op.imm <= INT32_MAX;
      };
      std::vector<PlanOp> packed;
      packed.reserve(ops.size());
      std::vector<int32_t> remap(ops.size() + 1, 0);
      size_t j = 0;
      while (j < ops.size()) {
        remap[j] = static_cast<int32_t>(packed.size());
        size_t k = j;
        while (k < ops.size() && run_member(ops[k]) && (k == j || !leader[k])) {
          ++k;
        }
        // Any >= 3 straight-line run pays for itself: one dispatch plus a
        // tight entry loop beats three dispatches even when the entries are
        // all constants (function-entry const blocks are the common case).
        if (k - j >= 3) {
          PlanOp run;
          run.code = PlanOpCode::kBinOpRun;
          run.args_off = static_cast<int32_t>(out->args_pool.size());
          run.args_len = static_cast<int32_t>(4 * (k - j));
          for (size_t m = j; m < k; ++m) {
            remap[m] = static_cast<int32_t>(packed.size());
            if (ops[m].code == PlanOpCode::kConst) {
              out->args_pool.push_back(-1);
              out->args_pool.push_back(static_cast<int32_t>(ops[m].imm));
              out->args_pool.push_back(-1);
            } else {
              out->args_pool.push_back(static_cast<int32_t>(ops[m].binop));
              out->args_pool.push_back(ops[m].a);
              out->args_pool.push_back(ops[m].b);
            }
            out->args_pool.push_back(ops[m].dst);
          }
          packed.push_back(run);
          plan_->ops_fused_ += static_cast<int64_t>(k - j - 1);
          plan_->run_count_ += 1;
          plan_->run_len_sum_ += static_cast<int64_t>(k - j);
          plan_->run_len_max_ =
              std::max(plan_->run_len_max_, static_cast<int64_t>(k - j));
          j = k;
        } else {
          packed.push_back(ops[j]);
          j += 1;
        }
      }
      remap[ops.size()] = static_cast<int32_t>(packed.size());
      for (PlanOp& op : packed) {
        if (op.target >= 0) {
          op.target = remap[static_cast<size_t>(op.target)];
        }
        if (op.target2 >= 0) {
          op.target2 = remap[static_cast<size_t>(op.target2)];
        }
      }
      ops = std::move(packed);
    }

    // Pass C: peephole fusion over adjacent pairs, repeated to a fixpoint —
    // a later round can absorb a round-1 superinstruction's neighbor (e.g.
    // kBinOpBin + the loop back-edge kJump becomes kBinOpBinJump, the whole
    // tail of a counted loop in one dispatch). Intermediate destinations
    // are still written (no liveness analysis), so semantics are identical
    // whether or not a pair fuses. Branch/jump destinations start basic
    // blocks; a block leader must stay addressable, so it can never be the
    // second half of a fusion.
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<char> leader(ops.size(), 0);
      for (const PlanOp& op : ops) {
        if (op.target >= 0) {
          leader[static_cast<size_t>(op.target)] = 1;
        }
        if (op.target2 >= 0) {
          leader[static_cast<size_t>(op.target2)] = 1;
        }
      }
      std::vector<PlanOp> fused;
      fused.reserve(ops.size());
      std::vector<int32_t> remap(ops.size() + 1, 0);
      size_t i = 0;
      while (i < ops.size()) {
        remap[i] = static_cast<int32_t>(fused.size());
        PlanOp merged;
        if (i + 1 < ops.size() && !leader[i + 1] && TryFuse(ops[i], ops[i + 1], &merged)) {
          remap[i + 1] = static_cast<int32_t>(fused.size());
          fused.push_back(merged);
          plan_->ops_fused_ += 1;
          changed = true;
          i += 2;
        } else {
          fused.push_back(ops[i]);
          i += 1;
        }
      }
      remap[ops.size()] = static_cast<int32_t>(fused.size());
      for (PlanOp& op : fused) {
        if (op.target >= 0) {
          op.target = remap[static_cast<size_t>(op.target)];
        }
        if (op.target2 >= 0) {
          op.target2 = remap[static_cast<size_t>(op.target2)];
        }
      }
      ops = std::move(fused);
    }
    out->ops = std::move(ops);
  }

  // ---------------------------------------------------------------------
  // Pass V: loop vectorization.
  //
  // Recognizes the counted-loop shape FunctionBuilder::For emits (after
  // copy elimination and const hoisting):
  //
  //     H:   done = i >= limit          (kBinOp kGe)
  //     H+1: if (done) goto E           (kBranch)
  //          <body>                     (H+2 .. J-2)
  //     J-1: i = i + <const 1>          (kBinOp kAdd)
  //     J:   goto H                     (kJump)
  //     E:   ...
  //
  // and, when the body qualifies (pure arithmetic / filters / native-array
  // column access — the layout cost model's "columnar" bucket), splices a
  // strip-mined vec block in front of the untouched scalar loop:
  //
  //     VB:  kVecLoopBegin  (exit -> E, bail -> H)
  //          <vec body over column vectors + selection vector>
  //     VE:  kVecLoopEnd    (commit, i += n, -> VB)
  //     H:   ... scalar loop, unchanged ...
  //     E:   ...
  //
  // The scalar loop is simultaneously the vectorize-off path (never entered
  // when strips run to completion: VB jumps straight to E when no
  // iterations remain) and the bail target. All strip side effects — slot
  // writebacks, native-array scatters, the induction advance — are deferred
  // to kVecLoopEnd, so a bail anywhere in a strip re-enters the scalar loop
  // with pristine strip-start state and replays the strip lane by lane:
  // aborts and faults fire at exactly the iteration, in exactly the
  // lane-major order, the interpreter would produce. Loops whose bodies
  // contain pointer-chasing ops (heap fields, record reads with symbolic
  // offsets, calls, allocation, emit) are rejected and stay row-layout;
  // the rejection reasons feed the op_mix bench output.
  void VectorizeLoops(std::vector<PlanOp>* ops_ptr, PlanFunction* out) {
    std::vector<PlanOp>& ops = *ops_ptr;

    // Slots whose only writer is a kConst (post-hoist these sit at function
    // entry): the step-size check needs their values. Snapshotted by value —
    // `ops` reallocates on every splice.
    std::vector<int32_t> writes(static_cast<size_t>(out->num_vars), 0);
    std::vector<char> const_i64(static_cast<size_t>(out->num_vars), 0);
    std::vector<int64_t> const_val(static_cast<size_t>(out->num_vars), 0);
    for (const PlanOp& op : ops) {
      if (op.dst >= 0 && static_cast<size_t>(op.dst) < writes.size()) {
        writes[static_cast<size_t>(op.dst)] += 1;
        bool is_i64_const = op.code == PlanOpCode::kConst && op.imm_tag == ValueTag::kI64;
        const_i64[static_cast<size_t>(op.dst)] = is_i64_const ? 1 : 0;
        const_val[static_cast<size_t>(op.dst)] = is_i64_const ? op.imm : 0;
      }
    }
    auto known_i64 = [&](int32_t slot, int64_t* v) {
      if (slot < out->num_params || static_cast<size_t>(slot) >= writes.size()) return false;
      if (writes[static_cast<size_t>(slot)] != 1 || !const_i64[static_cast<size_t>(slot)]) {
        return false;
      }
      *v = const_val[static_cast<size_t>(slot)];
      return true;
    };

    size_t h = 0;
    while (h + 3 < ops.size()) {
      size_t loop_end = 0;  // J (the back-edge jump), once a loop matches
      if (!MatchCountedLoop(ops, h, &loop_end)) {
        ++h;
        continue;
      }
      const size_t J = loop_end;
      std::string reject;
      std::vector<PlanOp> vec = LowerLoopBody(ops, h, J, out, known_i64, &reject);
      if (vec.empty()) {
        plan_->vec_loops_rejected_ += 1;
        if (plan_->vec_reject_reasons_.size() < 64) {
          plan_->vec_reject_reasons_.push_back(reject);
        }
        h = J + 1;
        continue;
      }

      // Splice [Begin, body..., End] in front of the scalar loop at h.
      const size_t K = vec.size();
      const int32_t E = ops[h + 1].target;  // loop exit (old index)
      std::vector<PlanOp> spliced;
      spliced.reserve(ops.size() + K);
      spliced.insert(spliced.end(), ops.begin(), ops.begin() + static_cast<long>(h));
      for (PlanOp& v : vec) {
        // Vec-op targets were emitted in "final index" space already except
        // for the symbolic markers below.
        spliced.push_back(v);
      }
      spliced.insert(spliced.end(), ops.begin() + static_cast<long>(h), ops.end());
      // Old indices >= h shift by K; vec ops' targets are patched here so
      // LowerLoopBody doesn't need to know the final layout.
      for (size_t m = 0; m < spliced.size(); ++m) {
        PlanOp& op = spliced[m];
        bool is_new_vec = m >= h && m < h + K;
        if (is_new_vec) {
          PlanOp& vop = op;
          if (vop.code == PlanOpCode::kVecLoopBegin) {
            vop.target = static_cast<int32_t>(E >= static_cast<int32_t>(h) ? E + K : E);
            vop.target2 = static_cast<int32_t>(h + K);
          } else if (vop.code == PlanOpCode::kVecLoopEnd) {
            vop.target = static_cast<int32_t>(h);  // back to Begin
          } else {
            vop.target2 = static_cast<int32_t>(h + K);  // bail target
          }
          continue;
        }
        if (op.target >= static_cast<int32_t>(h)) {
          op.target += static_cast<int32_t>(K);
        }
        if (op.target2 >= static_cast<int32_t>(h)) {
          op.target2 += static_cast<int32_t>(K);
        }
      }
      ops = std::move(spliced);
      plan_->vec_loops_ += 1;
      plan_->ops_vectorized_ += static_cast<int64_t>(J - h + 1);
      h = J + K + 1;  // continue after the (shifted) scalar loop
    }
  }

  // Matches the For() shape at `h` and verifies no control edge enters the
  // loop interior from outside. On success *J is the back-edge jump index.
  static bool MatchCountedLoop(const std::vector<PlanOp>& ops, size_t h, size_t* J) {
    const PlanOp& cmp = ops[h];
    if (cmp.code != PlanOpCode::kBinOp || cmp.binop != BinOpKind::kGe) return false;
    const PlanOp& br = ops[h + 1];
    if (br.code != PlanOpCode::kBranch || br.a != cmp.dst || br.target < 0) return false;
    const size_t E = static_cast<size_t>(br.target);
    if (E <= h + 1 || E > ops.size()) return false;
    const size_t j = E - 1;
    if (j <= h + 1 || j >= ops.size()) return false;
    const PlanOp& back = ops[j];
    if (back.code != PlanOpCode::kJump || back.target != static_cast<int32_t>(h)) return false;
    // No branch from anywhere may land strictly inside (h, j] except a
    // body-internal continue targeting the increment at j-1.
    for (size_t q = 0; q < ops.size(); ++q) {
      for (int32_t t : {ops[q].target, ops[q].target2}) {
        if (t <= static_cast<int32_t>(h) || t > static_cast<int32_t>(j)) continue;
        bool is_continue = t == static_cast<int32_t>(j - 1) && q > h + 1 && q < j - 1;
        bool is_exit_branch = q == h + 1;
        if (!is_continue && !is_exit_branch) return false;
      }
    }
    *J = j;
    return true;
  }

  // Qualifies the body of the loop [h, J] and lowers it to a vec block
  // [kVecLoopBegin, body..., kVecLoopEnd]. Returns an empty vector (and a
  // reason) when the loop must stay scalar. `known_i64` resolves slots
  // written by exactly one kConst.
  template <typename KnownI64>
  std::vector<PlanOp> LowerLoopBody(const std::vector<PlanOp>& ops, size_t h, size_t J,
                                    PlanFunction* out, const KnownI64& known_i64,
                                    std::string* reject) {
    const int32_t i_slot = ops[h].a;
    const int32_t limit_slot = ops[h].b;
    const int32_t done_slot = ops[h].dst;
    auto fail = [&](const std::string& why) {
      *reject = why;
      return std::vector<PlanOp>();
    };
    if (i_slot < 0 || limit_slot < 0 || done_slot < 0) return fail("malformed-head");
    if (done_slot == i_slot || done_slot == limit_slot) return fail("aliased-head-slots");

    // Increment must be i = i + 1 with a known-const step slot.
    const PlanOp& inc = ops[J - 1];
    if (inc.code != PlanOpCode::kBinOp || inc.binop != BinOpKind::kAdd || inc.dst != i_slot) {
      return fail("non-unit-step");
    }
    int64_t step = 0;
    int32_t step_slot = inc.a == i_slot ? inc.b : (inc.b == i_slot ? inc.a : -1);
    if (step_slot < 0 || !known_i64(step_slot, &step) || step != 1) {
      return fail("non-unit-step");
    }
    if (J < h + 3) return fail("empty-body");

    // Slots written anywhere in [h, J] (done, i, and body dsts).
    std::vector<char> written(static_cast<size_t>(out->num_vars), 0);
    std::vector<int32_t> body_writes(static_cast<size_t>(out->num_vars), 0);
    for (size_t p = h; p <= J; ++p) {
      int32_t d = ops[p].dst;
      if (d >= 0 && static_cast<size_t>(d) < written.size()) {
        written[static_cast<size_t>(d)] = 1;
        if (p >= h + 2 && p <= J - 2) {
          body_writes[static_cast<size_t>(d)] += 1;
        }
      }
    }
    if (written[static_cast<size_t>(limit_slot)] &&
        !(limit_slot == i_slot || limit_slot == done_slot)) {
      return fail("limit-written-in-loop");
    }
    if (body_writes[static_cast<size_t>(i_slot)] > 0) return fail("induction-written-in-body");

    const int32_t kIndCol = 0;
    int32_t ncols = 1;  // col 0 is the induction vector
    int32_t nscans = 0;
    std::vector<int32_t> col_of(static_cast<size_t>(out->num_vars), -1);
    std::vector<char> is_scan_slot(static_cast<size_t>(out->num_vars), 0);
    std::vector<std::pair<int32_t, int32_t>> col_wb;   // (slot, col)
    std::vector<std::pair<int32_t, int32_t>> scan_wb;  // (slot, scan idx)
    std::vector<int32_t> load_bases;
    std::vector<size_t> store_positions;  // indices into `body`
    std::vector<PlanOp> body;
    std::string why;

    // Resolve a read: mode 0 = column, mode 1 = loop-invariant slot.
    auto resolve = [&](int32_t s, int32_t* ref, int32_t* mode) {
      if (s < 0 || static_cast<size_t>(s) >= col_of.size()) return false;
      if (s == i_slot) {
        *ref = kIndCol;
        *mode = 0;
        return true;
      }
      if (col_of[static_cast<size_t>(s)] >= 0) {
        *ref = col_of[static_cast<size_t>(s)];
        *mode = 0;
        return true;
      }
      if (!written[static_cast<size_t>(s)]) {
        *ref = s;
        *mode = 1;
        return true;
      }
      return false;  // read of a body-defined slot before its definition
    };
    auto def_col = [&](int32_t slot, bool track_writeback) {
      int32_t c = ncols++;
      col_of[static_cast<size_t>(slot)] = c;
      if (track_writeback) col_wb.emplace_back(slot, c);
      return c;
    };

    for (size_t p = h + 2; p <= J - 2; ++p) {
      const PlanOp& s = ops[p];
      PlanOp v;
      v.kind = s.kind;
      v.float_kind = s.float_kind;
      switch (s.code) {
        case PlanOpCode::kBinOp: {
          bool carried = s.dst >= 0 && (s.a == s.dst || s.b == s.dst) && s.dst != i_slot &&
                         col_of[static_cast<size_t>(s.dst)] < 0;
          if (carried) {
            // Loop-carried reduction: single body write, operand is the
            // carried slot itself -> ordered kVecScan.
            if (body_writes[static_cast<size_t>(s.dst)] != 1) {
              return fail("carried-slot-multi-write");
            }
            int32_t other = s.a == s.dst ? s.b : s.a;
            int32_t oref = 0, omode = 0;
            if (!resolve(other, &oref, &omode)) return fail("carried-operand-unresolved");
            v.code = PlanOpCode::kVecScan;
            v.binop = s.binop;
            v.a = s.dst;                       // carried slot
            v.b = oref;
            v.d = omode;
            v.c = s.a == s.dst ? 0 : 1;        // carry on the left / right
            v.dst = def_col(s.dst, /*track_writeback=*/false);
            v.dst2 = nscans;
            scan_wb.emplace_back(s.dst, nscans);
            is_scan_slot[static_cast<size_t>(s.dst)] = 1;
            ++nscans;
            break;
          }
          if (s.dst < 0 || body_writes[static_cast<size_t>(s.dst)] != 1 || s.dst == i_slot ||
              is_scan_slot[static_cast<size_t>(s.dst)] != 0) {
            return fail("multi-write-slot");
          }
          int32_t aref = 0, amode = 0, bref = 0, bmode = 0;
          if (!resolve(s.a, &aref, &amode) || !resolve(s.b, &bref, &bmode)) {
            return fail("operand-unresolved");
          }
          v.code = PlanOpCode::kVecBinOp;
          v.binop = s.binop;
          v.a = aref;
          v.c = amode;
          v.b = bref;
          v.d = bmode;
          v.dst = def_col(s.dst, true);
          break;
        }
        case PlanOpCode::kConst: {
          if (s.dst < 0 || body_writes[static_cast<size_t>(s.dst)] != 1) {
            return fail("multi-write-slot");
          }
          if (s.imm_tag != ValueTag::kI64 && s.imm_tag != ValueTag::kF64) {
            return fail("non-numeric-const");
          }
          v.code = PlanOpCode::kVecUnOp;
          v.b = 1;  // broadcast
          v.c = 2;  // immediate
          v.imm_tag = s.imm_tag;
          v.imm = s.imm;
          v.fimm = s.fimm;
          v.dst = def_col(s.dst, true);
          break;
        }
        case PlanOpCode::kAssign:
        case PlanOpCode::kUnOp: {
          if (s.dst < 0 || body_writes[static_cast<size_t>(s.dst)] != 1) {
            return fail("multi-write-slot");
          }
          int32_t aref = 0, amode = 0;
          if (!resolve(s.a, &aref, &amode)) return fail("operand-unresolved");
          v.code = PlanOpCode::kVecUnOp;
          v.unop = s.unop;
          v.b = s.code == PlanOpCode::kAssign ? 1 : 0;
          v.a = aref;
          v.c = amode;
          v.dst = def_col(s.dst, true);
          break;
        }
        case PlanOpCode::kNativeArrayLength:
        case PlanOpCode::kNativeArrayLoad: {
          if (s.dst < 0 || body_writes[static_cast<size_t>(s.dst)] != 1) {
            return fail("multi-write-slot");
          }
          if (s.a < 0 || written[static_cast<size_t>(s.a)]) {
            return fail("gather-base-not-invariant");
          }
          v.code = PlanOpCode::kVecReadCol;
          v.a = s.a;
          if (s.code == PlanOpCode::kNativeArrayLength) {
            v.c = 1;  // length broadcast
          } else {
            int32_t iref = 0, imode = 0;
            if (!resolve(s.b, &iref, &imode)) return fail("gather-index-unresolved");
            v.b = iref;
            v.d = imode;
            v.c = 0;
          }
          load_bases.push_back(s.a);
          v.dst = def_col(s.dst, true);
          break;
        }
        case PlanOpCode::kNativeArrayStore: {
          if (s.a < 0 || written[static_cast<size_t>(s.a)]) {
            return fail("scatter-base-not-invariant");
          }
          int32_t iref = 0, imode = 0, vref = 0, vmode = 0;
          if (!resolve(s.b, &iref, &imode) || imode != 0) {
            return fail("scatter-index-not-column");
          }
          if (!resolve(s.c, &vref, &vmode)) return fail("scatter-value-unresolved");
          v.code = PlanOpCode::kVecWriteCol;
          v.a = s.a;
          v.b = iref;
          v.c = vref;
          v.d = vmode;
          store_positions.push_back(body.size());
          break;
        }
        case PlanOpCode::kBranch: {
          // A continue-style branch targeting the increment is a filter:
          // lanes where the condition holds skip the rest of the body.
          if (s.target != static_cast<int32_t>(J - 1)) return fail("irreducible-branch");
          int32_t cref = 0, cmode = 0;
          if (!resolve(s.a, &cref, &cmode)) return fail("filter-cond-unresolved");
          v.code = PlanOpCode::kVecFilter;
          v.a = cref;
          v.c = cmode;
          v.b = 0;  // keep lanes where the condition is false (branch skips)
          break;
        }
        default:
          // Pointer-chasing / effectful op: heap fields, symbolic-offset
          // record reads, calls, allocation, emits, aborts. The cost model
          // keeps this loop row-layout.
          return fail(std::string("row-op:") + PlanOpName(s.code));
      }
      body.push_back(v);
    }

    if (ncols <= 1 && nscans == 0 && store_positions.empty()) {
      return fail("no-vectorizable-work");
    }
    if (ncols > 128) return fail("too-many-columns");

    // Deferred scatters demand that no lane can observe this strip's stores:
    // every gathered base must be a provably different array. Statically
    // distinct slots get a runtime address guard; an identical slot is a
    // certain alias.
    if (!store_positions.empty() && !load_bases.empty()) {
      std::sort(load_bases.begin(), load_bases.end());
      load_bases.erase(std::unique(load_bases.begin(), load_bases.end()), load_bases.end());
      for (size_t sp : store_positions) {
        int32_t sbase = body[sp].a;
        for (int32_t lb : load_bases) {
          if (lb == sbase) return fail("scatter-gather-alias");
        }
        body[sp].args_off = static_cast<int32_t>(out->args_pool.size());
        body[sp].args_len = static_cast<int32_t>(load_bases.size());
        for (int32_t lb : load_bases) {
          out->args_pool.push_back(lb);
        }
      }
    }
    // With multiple scatters in one strip, commit order is (op, lane) while
    // scalar order is (lane, op); those agree only when no two scatters can
    // hit the same element from different lanes — guaranteed when every
    // index is the (all-distinct) induction vector.
    if (store_positions.size() > 1) {
      for (size_t sp : store_positions) {
        if (body[sp].b != kIndCol) return fail("multi-scatter-computed-index");
      }
    }

    // Assemble [Begin, body..., End]. Targets that depend on the final
    // layout (exit, bail) are patched by the caller.
    std::vector<PlanOp> vec;
    vec.reserve(body.size() + 2);
    PlanOp begin;
    begin.code = PlanOpCode::kVecLoopBegin;
    begin.a = i_slot;
    begin.b = limit_slot;
    begin.c = ncols;
    begin.d = done_slot;
    begin.dst = kIndCol;
    begin.imm = nscans;
    vec.push_back(begin);
    for (PlanOp& v : body) {
      vec.push_back(v);
    }
    PlanOp end;
    end.code = PlanOpCode::kVecLoopEnd;
    end.a = i_slot;
    end.dst = kIndCol;
    end.args_off = static_cast<int32_t>(out->args_pool.size());
    out->args_pool.push_back(static_cast<int32_t>(col_wb.size()));
    for (const auto& wb : col_wb) {
      out->args_pool.push_back(wb.first);
      out->args_pool.push_back(wb.second);
    }
    out->args_pool.push_back(static_cast<int32_t>(scan_wb.size()));
    for (const auto& wb : scan_wb) {
      out->args_pool.push_back(wb.first);
      out->args_pool.push_back(wb.second);
    }
    end.args_len = static_cast<int32_t>(out->args_pool.size()) - end.args_off;
    vec.push_back(end);
    return vec;
  }

  static bool TryFuse(const PlanOp& x, const PlanOp& y, PlanOp* out) {
    if (x.code == PlanOpCode::kBinOp && y.code == PlanOpCode::kBranch) {
      *out = x;
      out->code = PlanOpCode::kBinOpBranch;
      out->c = y.a;
      out->target = y.target;
      return true;
    }
    if (x.code == PlanOpCode::kUnOp && x.unop == UnOpKind::kNot &&
        y.code == PlanOpCode::kBranch) {
      *out = x;
      out->code = PlanOpCode::kNotBranch;
      out->c = y.a;
      out->target = y.target;
      return true;
    }
    if (x.code == PlanOpCode::kBinOp && y.code == PlanOpCode::kJump) {
      *out = x;
      out->code = PlanOpCode::kBinOpJump;
      out->target = y.target;
      return true;
    }
    // A conditional branch that falls through into a jump takes both edges
    // in one dispatch (the shape jump threading leaves behind loop tails).
    if (y.code == PlanOpCode::kJump &&
        (x.code == PlanOpCode::kBranch || x.code == PlanOpCode::kBinOpBranch ||
         x.code == PlanOpCode::kBinOpRunBranch)) {
      *out = x;
      out->code = x.code == PlanOpCode::kBranch ? PlanOpCode::kBranchElse
                  : x.code == PlanOpCode::kBinOpBranch
                      ? PlanOpCode::kBinOpBranchElse
                      : PlanOpCode::kBinOpRunBranchElse;
      out->target2 = y.target;
      return true;
    }
    if (x.code == PlanOpCode::kBinOpRun && y.code == PlanOpCode::kBranch) {
      *out = x;
      out->code = PlanOpCode::kBinOpRunBranch;
      out->c = y.a;
      out->target = y.target;
      return true;
    }
    if (x.code == PlanOpCode::kBinOpRun && y.code == PlanOpCode::kJump) {
      *out = x;
      out->code = PlanOpCode::kBinOpRunJump;
      out->target = y.target;
      return true;
    }
    if (x.code == PlanOpCode::kBinOpBin && y.code == PlanOpCode::kJump) {
      *out = x;
      out->code = PlanOpCode::kBinOpBinJump;
      out->target = y.target;
      return true;
    }
    if (x.code == PlanOpCode::kBinOp && y.code == PlanOpCode::kBinOpJump) {
      *out = x;
      out->code = PlanOpCode::kBinOpBinJump;
      out->imm = static_cast<int64_t>(y.binop);
      out->c = y.a;
      out->d = y.b;
      out->dst2 = y.dst;
      out->target = y.target;
      return true;
    }
    if (x.code == PlanOpCode::kBinOp && y.code == PlanOpCode::kBinOp) {
      // Both results are still stored, and the second binop reads its
      // operands from the slots after the first one's store, so dependent
      // and independent pairs alike behave exactly as when unfused. The
      // second kind rides in `imm`, which kBinOp never uses.
      *out = x;
      out->code = PlanOpCode::kBinOpBin;
      out->imm = static_cast<int64_t>(y.binop);
      out->c = y.a;
      out->d = y.b;
      out->dst2 = y.dst;
      return true;
    }
    if (x.code == PlanOpCode::kReadNativeConst && y.code == PlanOpCode::kBinOp &&
        y.dst != x.dst) {
      // The binop may read the loaded value (y.a/y.b == x.dst is fine: the
      // load's slot is written first), but must not overwrite it before the
      // operands are read — excluded by y.dst != x.dst above for the only
      // aliasing that matters.
      *out = x;
      out->code = PlanOpCode::kReadConstBin;
      out->binop = y.binop;
      out->b = y.a;
      out->c = y.b;
      out->dst2 = y.dst;
      return true;
    }
    return false;
  }

  void LowerStatement(const Statement& s, PlanFunction* out, std::vector<PlanOp>* ops) {
    PlanOp op;
    op.dst = s.dst;
    op.a = s.a;
    op.b = s.b;
    op.c = s.c;
    op.klass = s.klass;
    op.binop = s.binop;
    op.unop = s.unop;
    op.abort_reason = s.abort_reason;
    switch (s.op) {
      case Op::kLabel:
      case Op::kMonitorEnter:
      case Op::kMonitorExit:
        return;  // no-ops carry no runtime behavior: emit nothing
      case Op::kConst:
        op.code = PlanOpCode::kConst;
        op.imm_tag = s.imm.tag;
        op.imm = s.imm.i;
        op.fimm = s.imm.d;
        break;
      case Op::kAssign:
        op.code = PlanOpCode::kAssign;
        break;
      case Op::kBinOp:
        op.code = PlanOpCode::kBinOp;
        break;
      case Op::kUnOp:
        op.code = PlanOpCode::kUnOp;
        break;
      case Op::kDeserialize:
        op.code = PlanOpCode::kDeserialize;
        break;
      case Op::kSerialize:
        op.code = PlanOpCode::kSerialize;
        break;
      case Op::kFieldLoad:
      case Op::kFieldStore: {
        // Pre-bind the heap field's offset and kind: no klass->field() walk
        // per execution.
        const FieldInfo& field = s.klass->field(s.field_index);
        op.code = s.op == Op::kFieldLoad ? PlanOpCode::kFieldLoad : PlanOpCode::kFieldStore;
        op.imm = field.offset;
        op.kind = field.kind;
        break;
      }
      case Op::kArrayLoad:
        op.code = PlanOpCode::kArrayLoad;
        op.kind = s.elem_kind;
        break;
      case Op::kArrayStore:
        op.code = PlanOpCode::kArrayStore;
        op.kind = s.elem_kind;
        break;
      case Op::kArrayLength:
        op.code = PlanOpCode::kArrayLength;
        break;
      case Op::kNewObject:
        op.code = PlanOpCode::kNewObject;
        break;
      case Op::kNewArray:
        op.code = PlanOpCode::kNewArray;
        break;
      case Op::kCall:
        op.code = PlanOpCode::kCall;
        op.callee = s.func;
        op.args_off = static_cast<int32_t>(out->args_pool.size());
        op.args_len = static_cast<int32_t>(s.args.size());
        for (int arg : s.args) {
          out->args_pool.push_back(arg);
        }
        break;
      case Op::kCallNative:
        op.code = PlanOpCode::kIntrinsic;
        op.intrinsic = ResolveIntrinsic(s.native_name);
        op.args_off = static_cast<int32_t>(out->args_pool.size());
        op.args_len = static_cast<int32_t>(s.args.size());
        for (int arg : s.args) {
          out->args_pool.push_back(arg);
        }
        break;
      case Op::kBranch:
        op.code = PlanOpCode::kBranch;
        op.target = s.label;  // label id until the patch pass
        break;
      case Op::kJump:
        op.code = PlanOpCode::kJump;
        op.target = s.label;
        break;
      case Op::kReturn:
        op.code = PlanOpCode::kReturn;
        break;
      case Op::kGetAddress:
        op.code = PlanOpCode::kGetAddress;
        break;
      case Op::kGWriteObject:
        op.code = PlanOpCode::kGWriteObject;
        break;
      case Op::kReadNative:
        op.kind = s.elem_kind;
        op.field_index = s.field_index;
        op.code = LowerOffset(s, &op) ? PlanOpCode::kReadNativeConst
                                      : PlanOpCode::kReadNativeSym;
        break;
      case Op::kWriteNative:
        op.code = PlanOpCode::kWriteNative;
        op.kind = s.elem_kind;
        op.field_index = s.field_index;
        break;
      case Op::kAddrOfField:
        op.field_index = s.field_index;
        op.code = LowerOffset(s, &op) ? PlanOpCode::kAddrOfFieldConst
                                      : PlanOpCode::kAddrOfFieldSym;
        break;
      case Op::kNativeArrayLength:
        op.code = PlanOpCode::kNativeArrayLength;
        break;
      case Op::kNativeArrayLoad:
        op.code = PlanOpCode::kNativeArrayLoad;
        op.kind = s.elem_kind;
        break;
      case Op::kNativeArrayStore:
        op.code = PlanOpCode::kNativeArrayStore;
        op.kind = s.elem_kind;
        break;
      case Op::kNativeArrayElemAddr:
        op.code = PlanOpCode::kNativeArrayElemAddr;
        break;
      case Op::kAppendRecord:
        op.code = PlanOpCode::kAppendRecord;
        break;
      case Op::kAppendArray:
        op.code = PlanOpCode::kAppendArray;
        break;
      case Op::kAttachField:
        op.code = PlanOpCode::kAttachField;
        op.field_index = s.field_index;
        break;
      case Op::kAttachElement:
        op.code = PlanOpCode::kAttachElement;
        break;
      case Op::kAbort:
        op.code = PlanOpCode::kAbort;
        break;
    }
    op.float_kind = op.kind == FieldKind::kF32 || op.kind == FieldKind::kF64;
    ops->push_back(op);
  }

  const SerProgram& program_;
  const ExprPool& pool_;
  SerPlan* plan_;
  PlanOptions options_;
  Flattener flattener_;
  std::unordered_map<int, std::pair<int32_t, int32_t>> flat_cache_;
};

std::shared_ptr<const SerPlan> CompilePlan(const SerProgram& program,
                                           const DataStructAnalyzer& layouts,
                                           const PlanOptions& options) {
  auto plan = std::make_shared<SerPlan>();
  PlanBuilder builder(program, layouts, plan.get(), options);
  builder.Build();
  return plan;
}

const char* PlanOpName(PlanOpCode code) {
  switch (code) {
    case PlanOpCode::kConst: return "const";
    case PlanOpCode::kAssign: return "assign";
    case PlanOpCode::kBinOp: return "binop";
    case PlanOpCode::kUnOp: return "unop";
    case PlanOpCode::kDeserialize: return "deserialize";
    case PlanOpCode::kSerialize: return "serialize";
    case PlanOpCode::kFieldLoad: return "fieldload";
    case PlanOpCode::kFieldStore: return "fieldstore";
    case PlanOpCode::kArrayLoad: return "arrayload";
    case PlanOpCode::kArrayStore: return "arraystore";
    case PlanOpCode::kArrayLength: return "arraylength";
    case PlanOpCode::kNewObject: return "newobject";
    case PlanOpCode::kNewArray: return "newarray";
    case PlanOpCode::kCall: return "call";
    case PlanOpCode::kIntrinsic: return "intrinsic";
    case PlanOpCode::kBranch: return "branch";
    case PlanOpCode::kJump: return "jump";
    case PlanOpCode::kReturn: return "return";
    case PlanOpCode::kReturnVoid: return "returnvoid";
    case PlanOpCode::kGetAddress: return "getaddress";
    case PlanOpCode::kGWriteObject: return "gwriteobject";
    case PlanOpCode::kReadNativeConst: return "readnative.const";
    case PlanOpCode::kReadNativeSym: return "readnative.sym";
    case PlanOpCode::kWriteNative: return "writenative";
    case PlanOpCode::kAddrOfFieldConst: return "addroffield.const";
    case PlanOpCode::kAddrOfFieldSym: return "addroffield.sym";
    case PlanOpCode::kNativeArrayLength: return "narraylength";
    case PlanOpCode::kNativeArrayLoad: return "narrayload";
    case PlanOpCode::kNativeArrayStore: return "narraystore";
    case PlanOpCode::kNativeArrayElemAddr: return "narrayelemaddr";
    case PlanOpCode::kAppendRecord: return "appendrecord";
    case PlanOpCode::kAppendArray: return "appendarray";
    case PlanOpCode::kAttachField: return "attachfield";
    case PlanOpCode::kAttachElement: return "attachelement";
    case PlanOpCode::kAbort: return "abort";
    case PlanOpCode::kBinOpBranch: return "binop+branch";
    case PlanOpCode::kNotBranch: return "not+branch";
    case PlanOpCode::kBinOpJump: return "binop+jump";
    case PlanOpCode::kReadConstBin: return "read.const+binop";
    case PlanOpCode::kBinOpBin: return "binop+binop";
    case PlanOpCode::kBinOpBinJump: return "binop+binop+jump";
    case PlanOpCode::kBinOpRun: return "binop.run";
    case PlanOpCode::kBinOpRunBranch: return "binop.run+branch";
    case PlanOpCode::kBinOpRunJump: return "binop.run+jump";
    case PlanOpCode::kBranchElse: return "branch+else";
    case PlanOpCode::kBinOpBranchElse: return "binop+branch+else";
    case PlanOpCode::kBinOpRunBranchElse: return "binop.run+branch+else";
    case PlanOpCode::kVecLoopBegin: return "vec.loop.begin";
    case PlanOpCode::kVecBinOp: return "vec.binop";
    case PlanOpCode::kVecUnOp: return "vec.unop";
    case PlanOpCode::kVecScan: return "vec.scan";
    case PlanOpCode::kVecReadCol: return "vec.readcol";
    case PlanOpCode::kVecWriteCol: return "vec.writecol";
    case PlanOpCode::kVecFilter: return "vec.filter";
    case PlanOpCode::kVecLoopEnd: return "vec.loop.end";
    case PlanOpCode::kCount: break;
  }
  return "?";
}

}  // namespace gerenuk
