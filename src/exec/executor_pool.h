// The executor wire protocol: framing and channel plumbing between the
// driver and its forked executor processes (see DESIGN.md "Process model &
// shuffle service").
//
// Transport is a SOCK_STREAM socketpair per executor. Every message is one
// frame: [payload_len:u32 LE][type:u8][payload]. Types:
//
//   kRunTask   (driver -> executor): u32 task, u32 attempt, u8 fresh_context
//   kShutdown  (driver -> executor): empty; the child exits cleanly
//   kTaskOk    (executor -> driver): u32 task, u32 attempt,
//                                    u32 stats_len, [stats blob],
//                                    codec-encoded task output to frame end
//   kTaskFail  (executor -> driver): u32 task, u32 attempt,
//                                    u8 is_task_error, u8 kind,
//                                    i64 task_ordinal, i64 input_records,
//                                    varlen detail string
//   kHeartbeat (executor -> driver): empty, sent by the child's heartbeat
//                                    thread every heartbeat_ms
//
// The driver's side of each channel is non-blocking with a per-channel
// receive buffer (a SIGSTOP'd child must never wedge the driver); the
// child's side is blocking. All writes use MSG_NOSIGNAL so a dead peer
// yields EPIPE instead of killing the process.
#ifndef SRC_EXEC_EXECUTOR_POOL_H_
#define SRC_EXEC_EXECUTOR_POOL_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace gerenuk {

enum class ExecMsg : uint8_t {
  kRunTask = 0,
  kShutdown = 1,
  kTaskOk = 2,
  kTaskFail = 3,
  kHeartbeat = 4,
};

// Frames larger than this are protocol violations (a corrupted length
// prefix); the reader treats the peer as dead rather than allocating.
inline constexpr uint32_t kMaxFrameBytes = 1u << 30;

// Writes one frame, blocking until it is fully sent. When `write_mu` is
// non-null the whole frame is sent under the lock (the child's task loop
// and heartbeat thread share one fd). Returns false on EPIPE/error — the
// peer is gone and the caller should stop talking to it.
bool WriteFrame(int fd, ExecMsg type, const uint8_t* payload, size_t n,
                std::mutex* write_mu = nullptr);

// Child-side: blocks until one full frame arrives. Returns false on EOF or
// error (the driver died; the child should exit).
bool ReadFrameBlocking(int fd, ExecMsg* type, std::vector<uint8_t>* payload);

// Driver-side view of one executor's socket: non-blocking reads into a
// growing buffer, frames extracted on demand.
class ExecutorChannel {
 public:
  explicit ExecutorChannel(int fd);
  ~ExecutorChannel();
  ExecutorChannel(const ExecutorChannel&) = delete;
  ExecutorChannel& operator=(const ExecutorChannel&) = delete;

  int fd() const { return fd_; }

  // Drains every readable byte into the buffer. Returns false once the
  // peer is definitively gone (EOF or a hard error); buffered frames may
  // still be extracted afterwards.
  bool Pump();

  // Extracts the next complete frame, if any.
  bool NextFrame(ExecMsg* type, std::vector<uint8_t>* payload);

  // Driver-side blocking write of one (small) frame.
  bool Write(ExecMsg type, const uint8_t* payload, size_t n);

 private:
  int fd_;
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;  // bytes of buf_ already handed out as frames
};

}  // namespace gerenuk

#endif  // SRC_EXEC_EXECUTOR_POOL_H_
