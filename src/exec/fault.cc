#include "src/exec/fault.h"

#include <chrono>
#include <csignal>
#include <thread>

#include "src/nativebuf/native_buffer.h"
#include "src/support/logging.h"

namespace gerenuk {

namespace {
// Set once in an executor child immediately after fork, before any task
// runs; read on the task path. Plain bool: each process has its own copy
// (fork snapshots it) and no thread writes it concurrently with readers.
bool g_in_forked_executor = false;
}  // namespace

void SetInForkedExecutor(bool in_executor) { g_in_forked_executor = in_executor; }
bool InForkedExecutor() { return g_in_forked_executor; }

const char* TaskErrorKindName(TaskErrorKind kind) {
  switch (kind) {
    case TaskErrorKind::kException:
      return "exception";
    case TaskErrorKind::kOom:
      return "oom";
    case TaskErrorKind::kCorruptInput:
      return "corrupt-input";
    case TaskErrorKind::kStraggler:
      return "straggler";
    case TaskErrorKind::kExecutorLost:
      return "executor-lost";
  }
  return "?";
}

int64_t RetryPolicy::BackoffMsFor(int64_t task, int attempt) const {
  if (attempt <= 1) {
    return 0;
  }
  int64_t ms = backoff_base_ms > 0 ? backoff_base_ms << (attempt - 2) : 0;
  if (backoff_jitter_ms > 0) {
    // SplitMix64 finalizer over (seed, task, attempt): well-mixed, cheap,
    // and a pure function — the schedule reproduces exactly across runs
    // and worker counts (asserted in process_mode_test.cc).
    uint64_t z = jitter_seed;
    z ^= static_cast<uint64_t>(task) * 0x9e3779b97f4a7c15ull;
    z ^= static_cast<uint64_t>(attempt) * 0xbf58476d1ce4e5b9ull;
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z = z ^ (z >> 31);
    ms += static_cast<int64_t>(z % static_cast<uint64_t>(backoff_jitter_ms + 1));
  }
  return ms;
}

const FaultSpec* FaultInjector::Find(FaultKind kind, int64_t task_ordinal, int attempt) const {
  auto it = faults_.find(task_ordinal);
  if (it == faults_.end()) {
    return nullptr;
  }
  for (const FaultSpec& spec : it->second) {
    if (spec.kind == kind && spec.FiresOn(attempt)) {
      return &spec;
    }
  }
  return nullptr;
}

int64_t FaultInjector::RecordOf(FaultKind kind, int64_t task_ordinal, int64_t records,
                                int attempt) const {
  const FaultSpec* spec = Find(kind, task_ordinal, attempt);
  if (spec == nullptr || records == 0) {
    return -1;
  }
  return spec->record == kLateInTask ? records - 1 - records / 8 : spec->record;
}

void FaultInjector::AtTaskEntry(int64_t task_ordinal, int attempt,
                                const NativePartition* input,
                                const std::function<bool()>& cancelled) const {
  if (faults_.empty()) {
    return;
  }
  const int64_t records =
      input != nullptr ? static_cast<int64_t>(input->record_count()) : 0;

  if (const FaultSpec* kill = Find(FaultKind::kExecutorKill, task_ordinal, attempt)) {
    if (InForkedExecutor()) {
      // Real process death (or a SIGSTOP wedge): the driver-side supervisor
      // must detect it, classify it, and relaunch. This is the genuine
      // failure the process-mode tests exercise — no in-band error escapes.
      raise(kill->signal != 0 ? kill->signal : SIGKILL);
      // A SIGSTOP'd process resumes here after the supervisor-issued
      // SIGKILL never arrives... in practice SIGKILL follows; if the task
      // somehow resumes (e.g. SIGCONT in a debugger), fall through and run.
    } else {
      throw TaskError(TaskErrorKind::kExecutorLost, task_ordinal, attempt, records,
                      "injected executor kill (in-process mode)");
    }
  }

  if (const FaultSpec* corrupt = Find(FaultKind::kCorruptInput, task_ordinal, attempt)) {
    // Simulated bit-rot: flip one byte of the first record's body. The
    // chunk memory behind record addresses is owned and writable; the flip
    // happens once, before the checksum is verified at the stage-input
    // boundary, so every attempt of this task sees the same poisoned bytes.
    if (!corrupt->applied && input != nullptr && records > 0 && input->record_size(0) > 0) {
      reinterpret_cast<uint8_t*>(input->record_addr(0))[0] ^= 0x5a;
      corrupt->applied = true;
    }
  }

  if (const FaultSpec* delay = Find(FaultKind::kDelay, task_ordinal, attempt)) {
    // Cooperative straggling: sleep in slices, polling the cancel probe so
    // a deadline turns the delay into a deterministic straggler error
    // instead of a stage-long stall.
    using Clock = std::chrono::steady_clock;
    const auto until = Clock::now() + std::chrono::milliseconds(delay->delay_ms);
    while (Clock::now() < until) {
      if (cancelled && cancelled()) {
        throw TaskError(TaskErrorKind::kStraggler, task_ordinal, attempt, records,
                        "injected delay exceeded the task deadline");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  if (Find(FaultKind::kException, task_ordinal, attempt) != nullptr) {
    throw TaskError(TaskErrorKind::kException, task_ordinal, attempt, records,
                    "injected task exception");
  }
}

}  // namespace gerenuk
