#include "src/exec/fault.h"

#include <chrono>
#include <thread>

#include "src/nativebuf/native_buffer.h"
#include "src/support/logging.h"

namespace gerenuk {

const char* TaskErrorKindName(TaskErrorKind kind) {
  switch (kind) {
    case TaskErrorKind::kException:
      return "exception";
    case TaskErrorKind::kOom:
      return "oom";
    case TaskErrorKind::kCorruptInput:
      return "corrupt-input";
    case TaskErrorKind::kStraggler:
      return "straggler";
  }
  return "?";
}

const FaultSpec* FaultInjector::Find(FaultKind kind, int64_t task_ordinal, int attempt) const {
  auto it = faults_.find(task_ordinal);
  if (it == faults_.end()) {
    return nullptr;
  }
  for (const FaultSpec& spec : it->second) {
    if (spec.kind == kind && spec.FiresOn(attempt)) {
      return &spec;
    }
  }
  return nullptr;
}

int64_t FaultInjector::RecordOf(FaultKind kind, int64_t task_ordinal, int64_t records,
                                int attempt) const {
  const FaultSpec* spec = Find(kind, task_ordinal, attempt);
  if (spec == nullptr || records == 0) {
    return -1;
  }
  return spec->record == kLateInTask ? records - 1 - records / 8 : spec->record;
}

void FaultInjector::AtTaskEntry(int64_t task_ordinal, int attempt,
                                const NativePartition* input,
                                const std::function<bool()>& cancelled) const {
  if (faults_.empty()) {
    return;
  }
  const int64_t records =
      input != nullptr ? static_cast<int64_t>(input->record_count()) : 0;

  if (const FaultSpec* corrupt = Find(FaultKind::kCorruptInput, task_ordinal, attempt)) {
    // Simulated bit-rot: flip one byte of the first record's body. The
    // chunk memory behind record addresses is owned and writable; the flip
    // happens once, before the checksum is verified at the stage-input
    // boundary, so every attempt of this task sees the same poisoned bytes.
    if (!corrupt->applied && input != nullptr && records > 0 && input->record_size(0) > 0) {
      reinterpret_cast<uint8_t*>(input->record_addr(0))[0] ^= 0x5a;
      corrupt->applied = true;
    }
  }

  if (const FaultSpec* delay = Find(FaultKind::kDelay, task_ordinal, attempt)) {
    // Cooperative straggling: sleep in slices, polling the cancel probe so
    // a deadline turns the delay into a deterministic straggler error
    // instead of a stage-long stall.
    using Clock = std::chrono::steady_clock;
    const auto until = Clock::now() + std::chrono::milliseconds(delay->delay_ms);
    while (Clock::now() < until) {
      if (cancelled && cancelled()) {
        throw TaskError(TaskErrorKind::kStraggler, task_ordinal, attempt, records,
                        "injected delay exceeded the task deadline");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  if (Find(FaultKind::kException, task_ordinal, attempt) != nullptr) {
    throw TaskError(TaskErrorKind::kException, task_ordinal, attempt, records,
                    "injected task exception");
  }
}

}  // namespace gerenuk
