#include "src/exec/executor_pool.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

namespace gerenuk {

namespace {

// Sends exactly `n` bytes; retries EINTR; MSG_NOSIGNAL turns a dead peer
// into an EPIPE return instead of a fatal signal.
bool SendAll(int fd, const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(rc);
  }
  return true;
}

bool RecvAll(int fd, uint8_t* data, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t rc = ::recv(fd, data + got, n - got, 0);
    if (rc < 0 && errno == EINTR) {
      continue;
    }
    if (rc <= 0) {
      return false;  // EOF or error
    }
    got += static_cast<size_t>(rc);
  }
  return true;
}

}  // namespace

bool WriteFrame(int fd, ExecMsg type, const uint8_t* payload, size_t n,
                std::mutex* write_mu) {
  if (n > kMaxFrameBytes) {
    return false;
  }
  uint8_t header[5];
  const uint32_t len = static_cast<uint32_t>(n);
  std::memcpy(header, &len, 4);
  header[4] = static_cast<uint8_t>(type);
  if (write_mu != nullptr) {
    std::lock_guard<std::mutex> lock(*write_mu);
    return SendAll(fd, header, sizeof(header)) && (n == 0 || SendAll(fd, payload, n));
  }
  return SendAll(fd, header, sizeof(header)) && (n == 0 || SendAll(fd, payload, n));
}

bool ReadFrameBlocking(int fd, ExecMsg* type, std::vector<uint8_t>* payload) {
  uint8_t header[5];
  if (!RecvAll(fd, header, sizeof(header))) {
    return false;
  }
  uint32_t len = 0;
  std::memcpy(&len, header, 4);
  if (len > kMaxFrameBytes) {
    return false;
  }
  *type = static_cast<ExecMsg>(header[4]);
  payload->resize(len);
  return len == 0 || RecvAll(fd, payload->data(), len);
}

ExecutorChannel::ExecutorChannel(int fd) : fd_(fd) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  }
}

ExecutorChannel::~ExecutorChannel() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

bool ExecutorChannel::Pump() {
  uint8_t chunk[16384];
  for (;;) {
    ssize_t rc = ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (rc > 0) {
      buf_.insert(buf_.end(), chunk, chunk + rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // drained
    }
    if (rc < 0 && errno == EINTR) {
      continue;
    }
    return false;  // EOF or hard error: peer is gone
  }
}

bool ExecutorChannel::NextFrame(ExecMsg* type, std::vector<uint8_t>* payload) {
  const size_t avail = buf_.size() - consumed_;
  if (avail < 5) {
    return false;
  }
  uint32_t len = 0;
  std::memcpy(&len, buf_.data() + consumed_, 4);
  if (len > kMaxFrameBytes) {
    // Corrupted length prefix; resync is impossible on a byte stream.
    // Surface as "no frame" forever — the supervisor's liveness checks
    // will reap the peer.
    return false;
  }
  if (avail < 5 + static_cast<size_t>(len)) {
    return false;
  }
  *type = static_cast<ExecMsg>(buf_[consumed_ + 4]);
  payload->assign(buf_.begin() + static_cast<long>(consumed_ + 5),
                  buf_.begin() + static_cast<long>(consumed_ + 5 + len));
  consumed_ += 5 + static_cast<size_t>(len);
  // Compact once the consumed prefix dominates, so the buffer does not
  // grow with the whole stage's output volume.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(consumed_));
    consumed_ = 0;
  }
  return true;
}

bool ExecutorChannel::Write(ExecMsg type, const uint8_t* payload, size_t n) {
  // Driver writes are tiny (kRunTask / kShutdown) and only target an idle
  // executor, whose socket buffer is empty — blocking semantics via a
  // temporary flag flip would be overkill; SendAll on a non-blocking fd
  // can short-write EAGAIN, so spin on it.
  uint8_t header[5];
  const uint32_t len = static_cast<uint32_t>(n);
  std::memcpy(header, &len, 4);
  header[4] = static_cast<uint8_t>(type);
  uint8_t small[64];
  if (5 + n <= sizeof(small)) {
    std::memcpy(small, header, 5);
    if (n > 0) {
      std::memcpy(small + 5, payload, n);
    }
    size_t sent = 0;
    while (sent < 5 + n) {
      ssize_t rc = ::send(fd_, small + sent, 5 + n - sent, MSG_NOSIGNAL);
      if (rc < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        return false;
      }
      sent += static_cast<size_t>(rc);
    }
    return true;
  }
  return WriteFrame(fd_, type, payload, n);
}

}  // namespace gerenuk
