// The SerProgram -> SerPlan lowering (see src/exec/plan.h for the data
// structures and DESIGN.md "Plan compiler" for the lowering rules). Split
// from plan.cc so the compiler (driver-side, once per stage) and the
// executor (worker-side, once per record) stay separately readable.
#ifndef SRC_EXEC_PLAN_COMPILER_H_
#define SRC_EXEC_PLAN_COMPILER_H_

#include "src/exec/plan.h"

namespace gerenuk {

// Declared in plan.h (friend of SerPlan); re-exported here for callers that
// only compile plans:
//
//   std::shared_ptr<const SerPlan> CompilePlan(const SerProgram& program,
//                                              const DataStructAnalyzer& layouts,
//                                              const PlanOptions& options = {});

}  // namespace gerenuk

#endif  // SRC_EXEC_PLAN_COMPILER_H_
