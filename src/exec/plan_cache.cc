#include "src/exec/plan_cache.h"

#include "src/exec/plan.h"
#include "src/ir/ir.h"

namespace gerenuk {

size_t PlanCache::EstimateBytes(const std::string& key, const SerProgram* transformed,
                                const SerPlan* plan) {
  size_t bytes = key.size() + sizeof(Entry);
  if (transformed != nullptr) {
    bytes += sizeof(SerProgram);
    for (const auto& fn : transformed->functions) {
      bytes += sizeof(Function);
      bytes += fn->body.size() * sizeof(Statement);
      bytes += fn->vars.size() * sizeof(VarInfo);
      bytes += fn->label_index.size() * sizeof(int);
    }
  }
  if (plan != nullptr) {
    bytes += sizeof(SerPlan);
    bytes += static_cast<size_t>(plan->ops_total()) * sizeof(PlanOp);
  }
  return bytes;
}

bool PlanCache::Lookup(const ProgramSignature& sig, Entry* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(sig.text);
  if (it == index_.end()) {
    stats_.misses += 1;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
  stats_.hits += 1;
  if (out != nullptr) {
    *out = it->second->second;
  }
  return true;
}

void PlanCache::Insert(const ProgramSignature& sig, Entry entry) {
  if (!sig.valid()) {
    return;
  }
  entry.bytes = EstimateBytes(sig.text, entry.transformed.get(), entry.plan.get());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(sig.text);
  if (it != index_.end()) {
    stats_.bytes -= static_cast<int64_t>(it->second->second.bytes);
    lru_.erase(it->second);
    index_.erase(it);
    stats_.entries -= 1;
  }
  stats_.bytes += static_cast<int64_t>(entry.bytes);
  stats_.entries += 1;
  stats_.insertions += 1;
  lru_.emplace_front(sig.text, std::move(entry));
  index_[sig.text] = lru_.begin();
  EvictToBudgetLocked();
}

void PlanCache::EvictToBudgetLocked() {
  // Never evict the entry just inserted (front): an oversized entry stays
  // resident until the next insert displaces it, so a hot oversized program
  // still caches between back-to-back submissions.
  while (stats_.bytes > static_cast<int64_t>(budget_bytes_) && lru_.size() > 1) {
    auto victim = std::prev(lru_.end());
    stats_.bytes -= static_cast<int64_t>(victim->second.bytes);
    stats_.entries -= 1;
    stats_.evictions += 1;
    index_.erase(victim->first);
    lru_.erase(victim);
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
}

}  // namespace gerenuk
