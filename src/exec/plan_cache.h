// Signature-keyed cache of compiled SER artifacts: the transformed program
// and its flat SerPlan, so a repeat submission of the same logical job skips
// both the speculative transform and CompilePlan entirely.
//
// The key is a canonical program signature (see ComputeProgramSignature in
// src/dataflow/stage_compiler.h): engine mode + the layouts of every klass
// the stage touches + the printed original program. Lookups match on the
// full signature text — the FNV hash is a fast reject, never trusted alone —
// so two distinct programs can never alias an entry.
//
// A cache instance is bound to ONE engine: cached programs hold Klass*,
// Function*, and offset-expression ids that only mean something inside the
// engine that compiled them. A service pooling several engines keeps one
// PlanCache per engine and aggregates the Stats across them.
//
// Eviction is LRU under a byte budget (estimated: statements + plan ops +
// key text). Thread-safe: a service dispatcher and the engine thread may
// race Lookup/Insert.
#ifndef SRC_EXEC_PLAN_CACHE_H_
#define SRC_EXEC_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace gerenuk {

class SerPlan;
struct SerProgram;
struct Function;

// Canonical identity of a compiled SER: `text` is the exact-match key,
// `hash` its FNV-1a digest (used for fast rejects and as the per-SER key of
// abort-rate histories — see SpeculationOracle in spark.h).
struct ProgramSignature {
  uint64_t hash = 0;
  std::string text;

  bool valid() const { return !text.empty(); }
};

class PlanCache {
 public:
  struct Entry {
    std::shared_ptr<const SerProgram> transformed;
    std::shared_ptr<const SerPlan> plan;       // may be null (plan compiler off)
    const Function* fast_fn = nullptr;         // single-function entries only
    size_t bytes = 0;                          // filled by Insert
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t insertions = 0;
    int64_t bytes = 0;    // current estimated footprint
    int64_t entries = 0;  // current entry count
  };

  explicit PlanCache(size_t budget_bytes = 64u << 20) : budget_bytes_(budget_bytes) {}

  // On hit: copies the entry into `*out`, bumps the entry to most-recent,
  // counts a hit, returns true. On miss: counts a miss, returns false.
  bool Lookup(const ProgramSignature& sig, Entry* out);

  // Inserts (or replaces) the entry for `sig`, then evicts least-recently
  // used entries until the estimated footprint fits the byte budget. An
  // entry larger than the whole budget is inserted and immediately becomes
  // the only resident entry candidate — it is evicted by the next insert.
  void Insert(const ProgramSignature& sig, Entry entry);

  Stats stats() const;
  size_t budget_bytes() const { return budget_bytes_; }
  void Clear();

  // Estimated resident footprint of a cached program/plan, used for the
  // byte budget. Deliberately rough (structs + containers, not allocator
  // overhead): the budget bounds growth, it is not an accountant.
  static size_t EstimateBytes(const std::string& key, const SerProgram* transformed,
                              const SerPlan* plan);

 private:
  // front = most recently used.
  using LruList = std::list<std::pair<std::string, Entry>>;

  void EvictToBudgetLocked();

  mutable std::mutex mu_;
  size_t budget_bytes_;
  LruList lru_;
  std::unordered_map<std::string, LruList::iterator> index_;
  Stats stats_;
};

}  // namespace gerenuk

#endif  // SRC_EXEC_PLAN_CACHE_H_
