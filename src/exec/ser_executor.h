// The speculative execution engine (§3.6): runs a task's transformed SER
// over a native input partition; if an abort instruction fires, the
// executor is "terminated and relaunched" — every intermediate buffer and
// builder is discarded, the *original* program is re-executed over the same
// (immutable, hence intact) input buffers, deserializing each record into
// heap objects and re-serializing the outputs into the native format the
// downstream task expects.
//
// The per-phase time breakdown (compute / GC / serialize / deserialize)
// accumulates into the caller's PhaseTimes — the numbers behind Figure 6's
// stacked bars and Figure 10's re-execution costs.
#ifndef SRC_EXEC_SER_EXECUTOR_H_
#define SRC_EXEC_SER_EXECUTOR_H_

#include <functional>

#include "src/exec/fault.h"
#include "src/exec/plan.h"
#include "src/serde/inline_serializer.h"
#include "src/support/trace.h"

namespace gerenuk {

struct SpecOutcome {
  bool committed_fast_path = true;  // false => the slow path produced output
  int aborts = 0;
  AbortReason abort_reason = AbortReason::kForced;
  int64_t records_processed = 0;
  int64_t records_wasted = 0;  // fast-path work discarded by the abort
};

// Engine-level task description: where records come from, where emitted
// records go (the engine may route them to shuffle buckets), and any extra
// arguments for the task body (e.g. a broadcast variable's record).
struct TaskIo {
  const NativePartition* input = nullptr;
  // Compiled plan for the transformed program; when set, the fast path runs
  // on the direct-threaded PlanExecutor instead of the tree-walking
  // Interpreter (identical semantics — the differential tests prove it).
  // `extra_plans` register auxiliary function plans (key extraction, reduce
  // folds) with the same runner.
  const SerPlan* plan = nullptr;
  std::vector<const SerPlan*> extra_plans;
  // Fast path: `addr` is a committed address or builder; the engine renders
  // it wherever it wants via `builders` and may call back into `runner`
  // (e.g. to evaluate a key-extraction function on the emitted record).
  std::function<void(int64_t addr, const Klass*, SerRunner& runner, BuilderStore& builders)>
      emit_native;
  // Slow path: emitted record as a rooted heap object.
  std::function<void(ObjRef, const Klass*, SerRunner& runner)> emit_heap;
  // Extra body arguments. Fast path gets kAddr values, slow path kRef.
  std::vector<Value> fast_args;
  std::vector<Value> slow_args;
  // Invoked after a fast-path abort, before the slow path re-runs: the
  // engine discards whatever partial output its emit callbacks produced
  // (the simulator's analogue of tearing down the aborted executor's
  // intermediate buffers).
  std::function<void()> on_abort;
  // Invoked before every slow-path record with the current argument vector
  // (initialized from slow_args). Engines use it to materialize heap-side
  // arguments lazily (e.g. a broadcast object deserialized into the
  // executing worker's heap) and to re-read rooted references the GC may
  // have moved between records.
  std::function<void(std::vector<Value>& args)> refresh_slow_args;
  // Diagnostic context stamped into integrity-failure TaskErrors: which
  // stage this task belongs to and which input partition it reads. A seal
  // mismatch report that names (stage, partition, attempt) is actionable;
  // a bare "checksum failed" is not.
  const char* stage_label = "";
  int partition = -1;
  // Fault injection: this task's driver-assigned ordinal and the engine's
  // plan. A null plan disables injection. A non-empty plan requires a
  // non-negative ordinal (RunTaskIo checks).
  int64_t task_ordinal = -1;
  const FaultPlan* faults = nullptr;
  // Attempt number of this execution (1-based; the scheduler's retry state),
  // used to gate fault re-firing and stamped into TaskErrors.
  int attempt = 1;
  // Cooperative cancellation probe (WorkerContext::cancelled); polled by
  // long-running injected work so a deadline turns into a straggler error.
  std::function<bool()> cancelled;
  // Tracing sink of the executing worker (null = tracing off): the executor
  // emits fast-path/slow-path spans, abort instants, and per-record
  // deserialization spans into it.
  TraceSink* trace = nullptr;
  // Sampled plan-op profiler (see PlanExecutor::EnableProfiling): when
  // `plan_profile` is set and the stride is positive, the fast path's plan
  // dispatch records per-opcode counts and sampled time into it.
  OpProfile* plan_profile = nullptr;
  int64_t plan_profile_stride = 0;
};

class SerExecutor {
 public:
  SerExecutor(Heap& heap, WellKnown& wk, const DataStructAnalyzer& layouts,
              const SerProgram& original, const SerProgram& transformed)
      : heap_(heap),
        wk_(wk),
        layouts_(layouts),
        original_(original),
        transformed_(transformed) {}

  // The paper's user-provided `launch` method: invoked when a new executor
  // replaces an aborted one. Application-independent; defaults to nothing
  // (the simulator reuses the calling thread as the fresh executor).
  void set_launch_hook(std::function<void()> hook) { launch_hook_ = std::move(hook); }

  // Executes the task body once per input record. Output records are
  // appended to `*output` in the inline native format on both paths.
  // `faults`, when given, injects this task's planned faults (`task_ordinal`
  // keys into the plan and must be non-negative if the plan is non-empty —
  // the default matches TaskIo's "no ordinal assigned" sentinel).
  SpecOutcome RunTask(const NativePartition& input, NativePartition* output, PhaseTimes& times,
                      const FaultPlan* faults = nullptr, int64_t task_ordinal = -1);

  // Runs only the slow path (used by the unmodified-baseline engines and by
  // tests that need reference output).
  void RunSlowPath(const NativePartition& input, NativePartition* output, PhaseTimes& times);

  // General engine entry points with custom routing and body arguments.
  SpecOutcome RunTaskIo(TaskIo& io, PhaseTimes& times);
  void RunSlowPathIo(TaskIo& io, PhaseTimes& times);

  // Governor-degraded execution: skips speculation entirely and runs the
  // original program, but keeps the task-entry gates (fault injection, input
  // checksum) and the released-slot-on-throw contract of RunTaskIo.
  void RunDirectSlowPath(TaskIo& io, PhaseTimes& times);

 private:
  bool RunFastPathIo(TaskIo& io, PhaseTimes& times, SpecOutcome* outcome);
  // Task-entry gates: applies planned entry faults for this attempt, then
  // verifies a sealed input's integrity checksum (throws TaskError).
  void EnterTask(TaskIo& io);

  Heap& heap_;
  WellKnown& wk_;
  const DataStructAnalyzer& layouts_;
  const SerProgram& original_;
  const SerProgram& transformed_;
  std::function<void()> launch_hook_;
};

}  // namespace gerenuk

#endif  // SRC_EXEC_SER_EXECUTOR_H_
