#include "src/exec/task_scheduler.h"

#include <algorithm>

namespace gerenuk {

TaskScheduler::TaskScheduler(int num_workers, const HeapConfig& worker_heap_config,
                             KlassRegistry* shared_klasses, MemoryTracker* tracker) {
  GERENUK_CHECK(num_workers >= 1) << "num_workers must be >= 1";
  contexts_.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    contexts_.push_back(
        std::make_unique<WorkerContext>(w, worker_heap_config, shared_klasses, tracker));
  }
  if (num_workers > 1) {
    threads_.reserve(static_cast<size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w) {
      threads_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void TaskScheduler::set_trace(Trace* trace) {
  trace_ = trace;
  for (size_t w = 0; w < contexts_.size(); ++w) {
    contexts_[w]->set_trace_sink(trace != nullptr ? trace->worker(static_cast<int>(w))
                                                  : nullptr);
  }
}

namespace {

// Brackets one task attempt: tags the sink so every event the task body
// emits (fast/slow path, ser/deser, GC pauses, aborts) carries this
// (task, attempt), and emits the enclosing kTask span — on normal exit and
// on exception unwinds alike. Declared before the span would be, so the
// span closes while the tag is still set.
class TaskTraceScope {
 public:
  TaskTraceScope(TraceSink* sink, int64_t task, int attempt) : sink_(sink) {
    if (sink_ != nullptr) {
      sink_->BeginTask(task, attempt);
      start_ns_ = sink_->Now();
      attempt_ = attempt;
    }
  }
  ~TaskTraceScope() {
    if (sink_ != nullptr) {
      sink_->Span(TraceEventType::kTask, "task", start_ns_, attempt_);
      sink_->EndTask();
    }
  }
  TaskTraceScope(const TaskTraceScope&) = delete;
  TaskTraceScope& operator=(const TaskTraceScope&) = delete;

 private:
  TraceSink* sink_;
  int64_t start_ns_ = 0;
  int attempt_ = 0;
};

}  // namespace

void TaskScheduler::RunAttempt(WorkerContext& ctx, int task, int attempt, bool fresh_context) {
  if (fresh_context) {
    // The previous attempt's executor is terminated and a fresh one
    // launched (§3.6, generalized to arbitrary faults): new heap, new
    // serializer, no roots or half-built objects carried over.
    ctx.Recycle();
  }
  if (attempt > 1 && policy_.backoff_base_ms > 0) {
    // Deterministic backoff: a pure function of the attempt number.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(policy_.backoff_base_ms << (attempt - 2)));
  }
  ctx.BeginAttempt(attempt, policy_.task_deadline_ms);
  TaskTraceScope span(ctx.trace_sink(), task, attempt);
  (*current_)(ctx, task);
}

bool TaskScheduler::HandleFailure(int task, int attempt, int slot, std::exception_ptr error) {
  TaskErrorKind kind = TaskErrorKind::kException;
  bool is_task_error = false;
  bool retryable = true;  // plain exceptions are retryable, like task errors
  int64_t input_records = 0;
  try {
    std::rethrow_exception(error);
  } catch (const TaskError& e) {
    is_task_error = true;
    kind = e.kind();
    retryable = e.retryable();
    input_records = e.input_records();
  } catch (...) {
  }
  TraceSink* sink = contexts_[static_cast<size_t>(slot)]->trace_sink();
  if (retryable && attempt < policy_.max_attempts) {
    Attempt next;
    next.task = task;
    next.attempt = attempt + 1;
    if (kind == TaskErrorKind::kStraggler) {
      // Straggler relaunch: the fresh attempt must not land back on the
      // machine that was slow. The ban is honored whenever a sibling
      // worker exists; a single-worker pool reuses its (recycled) context.
      next.banned_worker = slot;
      stage_relaunches_ += 1;
      if (sink != nullptr) {
        sink->InstantFor(task, attempt, TraceEventType::kStragglerRelaunch,
                         "straggler_relaunch", next.attempt);
      }
    } else {
      stage_retries_ += 1;
      if (sink != nullptr) {
        sink->InstantFor(task, attempt, TraceEventType::kRetry, "retry", next.attempt);
      }
    }
    retry_queue_.push_back(next);
    return true;
  }
  if (kind == TaskErrorKind::kCorruptInput && is_task_error &&
      policy_.quarantine == QuarantinePolicy::kSkip) {
    // Skip-and-record: the poisoned partition contributes no output (the
    // failing task released its slot per the Task contract); the loss is
    // surfaced through EngineStats instead of failing the job.
    stage_quarantined_tasks_ += 1;
    stage_quarantined_records_ += input_records;
    tasks_terminal_ += 1;
    if (sink != nullptr) {
      sink->InstantFor(task, attempt, TraceEventType::kQuarantine, "quarantine",
                       input_records);
    }
    return false;
  }
  errors_.emplace_back(task, error);
  tasks_terminal_ += 1;
  return false;
}

void TaskScheduler::RunTasksOn(WorkerContext& ctx, int slot) {
  for (;;) {
    Attempt work;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (shutdown_ || tasks_terminal_ == num_tasks_) {
          return;
        }
        // Queued retries first (they are older work), skipping entries
        // banned for this worker when a sibling exists to take them.
        bool found = false;
        for (auto it = retry_queue_.begin(); it != retry_queue_.end(); ++it) {
          if (it->banned_worker == slot && contexts_.size() > 1) {
            continue;
          }
          work = *it;
          retry_queue_.erase(it);
          found = true;
          break;
        }
        if (!found && next_fresh_ < num_tasks_) {
          work = Attempt{next_fresh_, 1, -1};
          next_fresh_ += 1;
          found = true;
        }
        if (found) {
          break;
        }
        // All remaining work is in flight on other workers (or banned for
        // this one): wait for a retry to be queued or the stage to finish.
        work_cv_.wait(lock);
      }
    }
    try {
      RunAttempt(ctx, work.task, work.attempt, work.attempt > 1 && policy_.fresh_context_on_retry);
      std::lock_guard<std::mutex> lock(mu_);
      tasks_terminal_ += 1;
      if (tasks_terminal_ == num_tasks_) {
        work_cv_.notify_all();
        done_cv_.notify_all();
      }
    } catch (...) {
      // Terminate this attempt's executor context before the task can be
      // handed to anyone else, so a damaged heap never outlives the fault.
      if (policy_.fresh_context_on_retry) {
        ctx.Recycle();
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (HandleFailure(work.task, work.attempt, slot, std::current_exception())) {
        work_cv_.notify_all();
      } else if (tasks_terminal_ == num_tasks_) {
        work_cv_.notify_all();
        done_cv_.notify_all();
      }
    }
  }
}

void TaskScheduler::WorkerLoop(int slot) {
  uint64_t seen_gen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || stage_gen_ != seen_gen; });
      if (shutdown_) {
        return;
      }
      seen_gen = stage_gen_;
    }
    RunTasksOn(*contexts_[static_cast<size_t>(slot)], slot);
    {
      std::lock_guard<std::mutex> lock(mu_);
      workers_done_ += 1;
    }
    done_cv_.notify_all();
  }
}

void TaskScheduler::MergeStats(EngineStats* stage_stats) {
  for (auto& ctx : contexts_) {
    if (stage_stats != nullptr) {
      *stage_stats += ctx->stats();
    }
    ctx->stats() = EngineStats{};
  }
  if (stage_stats != nullptr) {
    stage_stats->retries += stage_retries_;
    stage_stats->straggler_relaunches += stage_relaunches_;
    stage_stats->quarantined_tasks += stage_quarantined_tasks_;
    stage_stats->quarantined_records += stage_quarantined_records_;
  }
  stage_retries_ = 0;
  stage_relaunches_ = 0;
  stage_quarantined_tasks_ = 0;
  stage_quarantined_records_ = 0;
  if (trace_ != nullptr) {
    // The barrier already happened: workers are quiescent, and the lock
    // acquisitions above give the driver a consistent view of every sink.
    trace_->FlushWorkersAtBarrier();
  }
}

void TaskScheduler::RethrowFirstError() {
  if (errors_.empty()) {
    return;
  }
  std::sort(errors_.begin(), errors_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::exception_ptr first = errors_.front().second;
  errors_.clear();
  std::rethrow_exception(first);
}

void TaskScheduler::RunStage(int num_tasks, const Task& task, EngineStats* stage_stats) {
  if (num_tasks <= 0) {
    return;
  }
  if (threads_.empty()) {
    // Single-worker pool: the calling thread is the executor. The same
    // retry/quarantine state machine runs; only the fan-out is absent.
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = &task;
      num_tasks_ = num_tasks;
      next_fresh_ = 0;
      tasks_terminal_ = 0;
      retry_queue_.clear();
    }
    RunTasksOn(*contexts_[0], 0);
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = nullptr;
    }
    MergeStats(stage_stats);
    RethrowFirstError();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = &task;
    num_tasks_ = num_tasks;
    next_fresh_ = 0;
    tasks_terminal_ = 0;
    retry_queue_.clear();
    workers_done_ = 0;
    stage_gen_ += 1;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_done_ == static_cast<int>(threads_.size()); });
    current_ = nullptr;
  }
  MergeStats(stage_stats);
  RethrowFirstError();
}

void TaskScheduler::RunStageSerial(int num_tasks, const Task& task, EngineStats* stage_stats) {
  WorkerContext& ctx = *contexts_[0];
  for (int t = 0; t < num_tasks; ++t) {
    try {
      TaskTraceScope span(ctx.trace_sink(), t, 1);
      task(ctx, t);
    } catch (...) {
      errors_.emplace_back(t, std::current_exception());
      break;  // a serial stage stops at the first failure, like the seed did
    }
  }
  MergeStats(stage_stats);
  RethrowFirstError();
}

}  // namespace gerenuk
