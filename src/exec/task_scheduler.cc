#include "src/exec/task_scheduler.h"

#include <algorithm>

namespace gerenuk {

TaskScheduler::TaskScheduler(int num_workers, const HeapConfig& worker_heap_config,
                             KlassRegistry* shared_klasses, MemoryTracker* tracker) {
  GERENUK_CHECK(num_workers >= 1) << "num_workers must be >= 1";
  contexts_.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    contexts_.push_back(
        std::make_unique<WorkerContext>(w, worker_heap_config, shared_klasses, tracker));
  }
  if (num_workers > 1) {
    threads_.reserve(static_cast<size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w) {
      threads_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void TaskScheduler::RunTasksOn(WorkerContext& ctx) {
  for (;;) {
    int task = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= num_tasks_) {
      return;
    }
    try {
      (*current_)(ctx, task);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      errors_.emplace_back(task, std::current_exception());
    }
  }
}

void TaskScheduler::WorkerLoop(int slot) {
  uint64_t seen_gen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || stage_gen_ != seen_gen; });
      if (shutdown_) {
        return;
      }
      seen_gen = stage_gen_;
    }
    RunTasksOn(*contexts_[static_cast<size_t>(slot)]);
    {
      std::lock_guard<std::mutex> lock(mu_);
      workers_done_ += 1;
    }
    done_cv_.notify_one();
  }
}

void TaskScheduler::MergeStats(EngineStats* stage_stats) {
  for (auto& ctx : contexts_) {
    if (stage_stats != nullptr) {
      *stage_stats += ctx->stats();
    }
    ctx->stats() = EngineStats{};
  }
}

void TaskScheduler::RethrowFirstError() {
  if (errors_.empty()) {
    return;
  }
  std::sort(errors_.begin(), errors_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::exception_ptr first = errors_.front().second;
  errors_.clear();
  std::rethrow_exception(first);
}

void TaskScheduler::RunStage(int num_tasks, const Task& task, EngineStats* stage_stats) {
  if (num_tasks <= 0) {
    return;
  }
  if (threads_.empty()) {
    // Single-worker pool: the calling thread is the executor.
    current_ = &task;
    num_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    RunTasksOn(*contexts_[0]);
    current_ = nullptr;
    MergeStats(stage_stats);
    RethrowFirstError();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = &task;
    num_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    stage_gen_ += 1;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_done_ == static_cast<int>(threads_.size()); });
    current_ = nullptr;
  }
  MergeStats(stage_stats);
  RethrowFirstError();
}

void TaskScheduler::RunStageSerial(int num_tasks, const Task& task, EngineStats* stage_stats) {
  WorkerContext& ctx = *contexts_[0];
  for (int t = 0; t < num_tasks; ++t) {
    try {
      task(ctx, t);
    } catch (...) {
      errors_.emplace_back(t, std::current_exception());
      break;  // a serial stage stops at the first failure, like the seed did
    }
  }
  MergeStats(stage_stats);
  RethrowFirstError();
}

}  // namespace gerenuk
