#include "src/exec/task_scheduler.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/exec/executor_pool.h"

namespace gerenuk {

TaskScheduler::TaskScheduler(int num_workers, const HeapConfig& worker_heap_config,
                             KlassRegistry* shared_klasses, MemoryTracker* tracker,
                             bool process_mode)
    : process_mode_(process_mode) {
  GERENUK_CHECK(num_workers >= 1) << "num_workers must be >= 1";
  contexts_.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    contexts_.push_back(
        std::make_unique<WorkerContext>(w, worker_heap_config, shared_klasses, tracker));
  }
  // Process mode never spawns worker threads: the driver must be the only
  // thread of consequence when it forks executors (fork() copies only the
  // calling thread; a sibling thread holding an allocator lock at fork time
  // would deadlock the child). Codec-less stages take the inline
  // single-worker path on context 0 instead.
  if (num_workers > 1 && !process_mode_) {
    threads_.reserve(static_cast<size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w) {
      threads_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void TaskScheduler::set_trace(Trace* trace) {
  trace_ = trace;
  for (size_t w = 0; w < contexts_.size(); ++w) {
    contexts_[w]->set_trace_sink(trace != nullptr ? trace->worker(static_cast<int>(w))
                                                  : nullptr);
  }
}

namespace {

// Brackets one task attempt: tags the sink so every event the task body
// emits (fast/slow path, ser/deser, GC pauses, aborts) carries this
// (task, attempt), and emits the enclosing kTask span — on normal exit and
// on exception unwinds alike. Declared before the span would be, so the
// span closes while the tag is still set.
class TaskTraceScope {
 public:
  TaskTraceScope(TraceSink* sink, int64_t task, int attempt) : sink_(sink) {
    if (sink_ != nullptr) {
      sink_->BeginTask(task, attempt);
      start_ns_ = sink_->Now();
      attempt_ = attempt;
    }
  }
  ~TaskTraceScope() {
    if (sink_ != nullptr) {
      sink_->Span(TraceEventType::kTask, "task", start_ns_, attempt_);
      sink_->EndTask();
    }
  }
  TaskTraceScope(const TaskTraceScope&) = delete;
  TaskTraceScope& operator=(const TaskTraceScope&) = delete;

 private:
  TraceSink* sink_;
  int64_t start_ns_ = 0;
  int attempt_ = 0;
};

}  // namespace

void TaskScheduler::ThrowIfJobCancelled() const {
  if (cancel_check_ == nullptr) {
    return;
  }
  const CancelCause cause = cancel_check_();
  if (cause != CancelCause::kNone) {
    throw JobCancelled(cause);
  }
}

void TaskScheduler::RunAttempt(WorkerContext& ctx, int task, int attempt, bool fresh_context) {
  ThrowIfJobCancelled();
  if (fresh_context) {
    // The previous attempt's executor is terminated and a fresh one
    // launched (§3.6, generalized to arbitrary faults): new heap, new
    // serializer, no roots or half-built objects carried over.
    ctx.Recycle();
  }
  const int64_t backoff_ms = policy_.BackoffMsFor(task, attempt);
  if (backoff_ms > 0) {
    // Deterministic backoff: a pure function of (task, attempt) and the
    // policy's jitter seed — reproducible schedules, no thundering herd.
    // Slept in slices so a job-level cancel interrupts the wait instead of
    // riding out the full (possibly long) backoff.
    int64_t remaining_ms = backoff_ms;
    while (remaining_ms > 0) {
      ThrowIfJobCancelled();
      const int64_t slice_ms = remaining_ms < 10 ? remaining_ms : 10;
      std::this_thread::sleep_for(std::chrono::milliseconds(slice_ms));
      remaining_ms -= slice_ms;
    }
    ThrowIfJobCancelled();
  }
  ctx.BeginAttempt(attempt, policy_.task_deadline_ms);
  TaskTraceScope span(ctx.trace_sink(), task, attempt);
  (*current_)(ctx, task);
}

bool TaskScheduler::HandleFailure(int task, int attempt, int slot, std::exception_ptr error) {
  TaskErrorKind kind = TaskErrorKind::kException;
  bool is_task_error = false;
  bool retryable = true;  // plain exceptions are retryable, like task errors
  int64_t input_records = 0;
  try {
    std::rethrow_exception(error);
  } catch (const TaskError& e) {
    is_task_error = true;
    kind = e.kind();
    retryable = e.retryable();
    input_records = e.input_records();
  } catch (const JobCancelled&) {
    // The enclosing job was cancelled (or hit its deadline): retrying would
    // just re-observe the cancel flag. Fail fast so the stage unwinds.
    retryable = false;
  } catch (...) {
  }
  TraceSink* sink = contexts_[static_cast<size_t>(slot)]->trace_sink();
  if (retryable && attempt < policy_.max_attempts) {
    Attempt next;
    next.task = task;
    next.attempt = attempt + 1;
    if (kind == TaskErrorKind::kStraggler) {
      // Straggler relaunch: the fresh attempt must not land back on the
      // machine that was slow. The ban is honored whenever a sibling
      // worker exists; a single-worker pool reuses its (recycled) context.
      next.banned_worker = slot;
      stage_relaunches_ += 1;
      if (sink != nullptr) {
        sink->InstantFor(task, attempt, TraceEventType::kStragglerRelaunch,
                         "straggler_relaunch", next.attempt);
      }
    } else {
      stage_retries_ += 1;
      if (sink != nullptr) {
        sink->InstantFor(task, attempt, TraceEventType::kRetry, "retry", next.attempt);
      }
    }
    retry_queue_.push_back(next);
    return true;
  }
  if (kind == TaskErrorKind::kCorruptInput && is_task_error &&
      policy_.quarantine == QuarantinePolicy::kSkip) {
    // Skip-and-record: the poisoned partition contributes no output (the
    // failing task released its slot per the Task contract); the loss is
    // surfaced through EngineStats instead of failing the job.
    stage_quarantined_tasks_ += 1;
    stage_quarantined_records_ += input_records;
    tasks_terminal_ += 1;
    if (sink != nullptr) {
      sink->InstantFor(task, attempt, TraceEventType::kQuarantine, "quarantine",
                       input_records);
    }
    return false;
  }
  errors_.emplace_back(task, error);
  tasks_terminal_ += 1;
  return false;
}

void TaskScheduler::RunTasksOn(WorkerContext& ctx, int slot) {
  for (;;) {
    Attempt work;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (shutdown_ || tasks_terminal_ == num_tasks_) {
          return;
        }
        // Queued retries first (they are older work), skipping entries
        // banned for this worker when a sibling exists to take them.
        bool found = false;
        for (auto it = retry_queue_.begin(); it != retry_queue_.end(); ++it) {
          if (it->banned_worker == slot && contexts_.size() > 1) {
            continue;
          }
          work = *it;
          retry_queue_.erase(it);
          found = true;
          break;
        }
        if (!found && next_fresh_ < num_tasks_) {
          work = Attempt{next_fresh_, 1, -1};
          next_fresh_ += 1;
          found = true;
        }
        if (found) {
          break;
        }
        // All remaining work is in flight on other workers (or banned for
        // this one): wait for a retry to be queued or the stage to finish.
        work_cv_.wait(lock);
      }
    }
    try {
      RunAttempt(ctx, work.task, work.attempt, work.attempt > 1 && policy_.fresh_context_on_retry);
      std::lock_guard<std::mutex> lock(mu_);
      tasks_terminal_ += 1;
      if (tasks_terminal_ == num_tasks_) {
        work_cv_.notify_all();
        done_cv_.notify_all();
      }
    } catch (...) {
      // Terminate this attempt's executor context before the task can be
      // handed to anyone else, so a damaged heap never outlives the fault.
      if (policy_.fresh_context_on_retry) {
        ctx.Recycle();
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (HandleFailure(work.task, work.attempt, slot, std::current_exception())) {
        work_cv_.notify_all();
      } else if (tasks_terminal_ == num_tasks_) {
        work_cv_.notify_all();
        done_cv_.notify_all();
      }
    }
  }
}

void TaskScheduler::WorkerLoop(int slot) {
  uint64_t seen_gen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || stage_gen_ != seen_gen; });
      if (shutdown_) {
        return;
      }
      seen_gen = stage_gen_;
    }
    RunTasksOn(*contexts_[static_cast<size_t>(slot)], slot);
    {
      std::lock_guard<std::mutex> lock(mu_);
      workers_done_ += 1;
    }
    done_cv_.notify_all();
  }
}

void TaskScheduler::MergeStats(EngineStats* stage_stats) {
  for (auto& ctx : contexts_) {
    if (stage_stats != nullptr) {
      *stage_stats += ctx->stats();
    }
    ctx->stats() = EngineStats{};
  }
  if (stage_stats != nullptr) {
    stage_stats->retries += stage_retries_;
    stage_stats->straggler_relaunches += stage_relaunches_;
    stage_stats->quarantined_tasks += stage_quarantined_tasks_;
    stage_stats->quarantined_records += stage_quarantined_records_;
    stage_stats->executors_launched += stage_executors_launched_;
    stage_stats->executor_deaths += stage_executor_deaths_;
    stage_stats->executor_relaunches += stage_executor_relaunches_;
    stage_stats->heartbeats_received += stage_heartbeats_;
  }
  stage_retries_ = 0;
  stage_relaunches_ = 0;
  stage_quarantined_tasks_ = 0;
  stage_quarantined_records_ = 0;
  stage_executors_launched_ = 0;
  stage_executor_deaths_ = 0;
  stage_executor_relaunches_ = 0;
  stage_heartbeats_ = 0;
  if (trace_ != nullptr) {
    // The barrier already happened: workers are quiescent, and the lock
    // acquisitions above give the driver a consistent view of every sink.
    trace_->FlushWorkersAtBarrier();
  }
}

void TaskScheduler::RethrowFirstError() {
  if (errors_.empty()) {
    return;
  }
  std::sort(errors_.begin(), errors_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::exception_ptr first = errors_.front().second;
  errors_.clear();
  std::rethrow_exception(first);
}

void TaskScheduler::RunStage(int num_tasks, const Task& task, EngineStats* stage_stats,
                             const StageCodec* codec) {
  if (num_tasks <= 0) {
    return;
  }
  if (process_mode_ && codec != nullptr && codec->encode && codec->decode) {
    RunStageProcess(num_tasks, task, stage_stats, *codec);
    return;
  }
  if (threads_.empty()) {
    // Single-worker pool: the calling thread is the executor. The same
    // retry/quarantine state machine runs; only the fan-out is absent.
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = &task;
      num_tasks_ = num_tasks;
      next_fresh_ = 0;
      tasks_terminal_ = 0;
      retry_queue_.clear();
    }
    RunTasksOn(*contexts_[0], 0);
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = nullptr;
    }
    MergeStats(stage_stats);
    RethrowFirstError();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = &task;
    num_tasks_ = num_tasks;
    next_fresh_ = 0;
    tasks_terminal_ = 0;
    retry_queue_.clear();
    workers_done_ = 0;
    stage_gen_ += 1;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_done_ == static_cast<int>(threads_.size()); });
    current_ = nullptr;
  }
  MergeStats(stage_stats);
  RethrowFirstError();
}

namespace {

// Supervisor-side view of one executor slot (process mode).
struct ExecSlot {
  pid_t pid = -1;
  std::unique_ptr<ExecutorChannel> channel;
  bool alive = false;
  bool busy = false;
  int task = -1;
  int attempt = 0;
  int64_t task_start_ns = 0;      // driver trace clock, at dispatch
  int64_t last_heartbeat_ms = 0;  // steady clock
  int relaunches = 0;             // fresh processes consumed after the first
};

int64_t SteadyMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string DescribeExit(int status, const char* how) {
  if (WIFSIGNALED(status)) {
    return std::string(how) + ", killed by signal " + std::to_string(WTERMSIG(status));
  }
  if (WIFEXITED(status)) {
    return std::string(how) + ", exited with status " + std::to_string(WEXITSTATUS(status));
  }
  return how;
}

}  // namespace

void TaskScheduler::RunStageProcess(int num_tasks, const Task& task,
                                    EngineStats* stage_stats, const StageCodec& codec) {
  // The supervisor is single-threaded (process mode spawns no worker
  // threads), so the scheduler's stage state — retry_queue_, counters,
  // errors_ — needs no locking here; HandleFailure's mu_ contract is
  // trivially satisfied by exclusivity.
  current_ = &task;
  num_tasks_ = num_tasks;
  next_fresh_ = 0;
  tasks_terminal_ = 0;
  retry_queue_.clear();

  const int nslots = static_cast<int>(contexts_.size());
  std::vector<ExecSlot> slots(static_cast<size_t>(nslots));
  int alive_count = 0;
  TraceSink* driver_sink = trace_ != nullptr ? trace_->driver() : nullptr;

  auto launch = [&](int s) -> bool {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      return false;
    }
    pid_t pid = ::fork();
    GERENUK_CHECK(pid >= 0) << "fork failed: " << std::strerror(errno);
    if (pid == 0) {
      ::close(fds[0]);
      ExecutorChildMain(fds[1], s, codec);  // never returns
    }
    ::close(fds[1]);
    ExecSlot& slot = slots[static_cast<size_t>(s)];
    slot.pid = pid;
    slot.channel = std::make_unique<ExecutorChannel>(fds[0]);
    slot.alive = true;
    slot.busy = false;
    slot.task = -1;
    slot.last_heartbeat_ms = SteadyMs();
    stage_executors_launched_ += 1;
    return true;
  };

  for (int s = 0; s < nslots; ++s) {
    if (launch(s)) {
      alive_count += 1;
    }
  }
  GERENUK_CHECK(alive_count > 0) << "could not launch any executor process";

  // Pulls the next runnable attempt for `s`, honoring straggler bans (when a
  // sibling slot exists) and retry backoff deadlines. Retries first: they
  // are older work.
  auto next_work = [&](int s, Attempt* out) -> bool {
    const int64_t now = SteadyMs();
    for (auto it = retry_queue_.begin(); it != retry_queue_.end(); ++it) {
      if (it->banned_worker == s && nslots > 1) {
        continue;
      }
      if (it->not_before_ms > now) {
        continue;
      }
      *out = *it;
      retry_queue_.erase(it);
      return true;
    }
    if (next_fresh_ < num_tasks_) {
      *out = Attempt{next_fresh_, 1, -1};
      next_fresh_ += 1;
      return true;
    }
    return false;
  };

  auto dispatch = [&](int s, const Attempt& a) {
    ExecSlot& slot = slots[static_cast<size_t>(s)];
    ByteBuffer msg;
    msg.WriteU32(static_cast<uint32_t>(a.task));
    msg.WriteU32(static_cast<uint32_t>(a.attempt));
    msg.WriteU8(a.attempt > 1 && policy_.fresh_context_on_retry ? 1 : 0);
    slot.busy = true;
    slot.task = a.task;
    slot.attempt = a.attempt;
    TraceSink* wsink = contexts_[static_cast<size_t>(s)]->trace_sink();
    slot.task_start_ns = wsink != nullptr ? wsink->Now() : 0;
    // A write failure means the peer died between frames; the next poll
    // round observes EOF and reroutes the task through the death path.
    slot.channel->Write(ExecMsg::kRunTask, msg.data(), msg.size());
  };

  // Drains and applies every buffered frame from slot `s`.
  auto handle_frames = [&](int s) {
    ExecSlot& slot = slots[static_cast<size_t>(s)];
    ExecMsg type;
    std::vector<uint8_t> payload;
    while (slot.channel != nullptr && slot.channel->NextFrame(&type, &payload)) {
      if (type == ExecMsg::kHeartbeat) {
        slot.last_heartbeat_ms = SteadyMs();
        stage_heartbeats_ += 1;
        continue;
      }
      if (type == ExecMsg::kTaskOk) {
        ByteReader in(payload.data(), payload.size());
        const int done_task = static_cast<int>(in.ReadU32());
        const int done_attempt = static_cast<int>(in.ReadU32());
        const uint32_t stats_len = in.ReadU32();
        const size_t stats_pos = in.position();
        EngineStats task_stats;
        if (ParseEngineStats(&in, &task_stats)) {
          contexts_[static_cast<size_t>(s)]->stats() += task_stats;
        }
        in.Seek(stats_pos + stats_len);
        // Driver-side task span, attributed to this worker's timeline so
        // the trace looks like in-process mode (child-side sinks die with
        // the child; wall-time from dispatch is the honest span).
        TraceSink* wsink = contexts_[static_cast<size_t>(s)]->trace_sink();
        if (wsink != nullptr) {
          wsink->BeginTask(done_task, done_attempt);
          wsink->Span(TraceEventType::kTask, "task", slot.task_start_ns, done_attempt);
          wsink->EndTask();
        }
        slot.busy = false;
        slot.task = -1;
        // A decode failure (hostile or damaged wire bytes) fails closed
        // through the normal failure classification — never by unwinding
        // past the supervisor with children still alive.
        try {
          codec.decode(done_task, &in);
          tasks_terminal_ += 1;
        } catch (...) {
          if (HandleFailure(done_task, done_attempt, s, std::current_exception())) {
            retry_queue_.back().not_before_ms =
                SteadyMs() + policy_.BackoffMsFor(done_task, done_attempt + 1);
          }
        }
        continue;
      }
      if (type == ExecMsg::kTaskFail) {
        ByteReader in(payload.data(), payload.size());
        const int failed_task = static_cast<int>(in.ReadU32());
        const int failed_attempt = static_cast<int>(in.ReadU32());
        const bool is_task_error = in.ReadU8() != 0;
        const TaskErrorKind kind = static_cast<TaskErrorKind>(in.ReadU8());
        const int64_t ordinal = in.ReadI64();
        const int64_t input_records = in.ReadI64();
        const std::string detail = in.ReadString();
        std::exception_ptr error =
            is_task_error
                ? std::make_exception_ptr(
                      TaskError(kind, ordinal, failed_attempt, input_records, detail))
                : std::make_exception_ptr(std::runtime_error(detail));
        slot.busy = false;
        slot.task = -1;
        if (HandleFailure(failed_task, failed_attempt, s, error)) {
          retry_queue_.back().not_before_ms =
              SteadyMs() + policy_.BackoffMsFor(failed_task, failed_attempt + 1);
        }
        continue;
      }
      // Unknown frame type: ignore (forward compatibility).
    }
  };

  // Declares slot `s` dead: reap, classify, reroute its in-flight task as
  // TaskError{kExecutorLost}, and relaunch within budget if work remains.
  // Buffered frames must already be drained (a child can complete a task
  // and die before the driver reads the result).
  auto on_executor_death = [&](int s, const char* how) {
    ExecSlot& slot = slots[static_cast<size_t>(s)];
    if (!slot.alive) {
      return;
    }
    slot.alive = false;
    alive_count -= 1;
    stage_executor_deaths_ += 1;
    slot.channel.reset();
    int status = 0;
    ::waitpid(slot.pid, &status, 0);
    slot.pid = -1;
    const std::string classify = DescribeExit(status, how);
    if (driver_sink != nullptr) {
      driver_sink->InstantFor(slot.task, slot.attempt, TraceEventType::kExecutorDead,
                              "executor_dead", s);
    }
    if (slot.busy) {
      const int lost_task = slot.task;
      const int lost_attempt = slot.attempt;
      slot.busy = false;
      slot.task = -1;
      auto error = std::make_exception_ptr(
          TaskError(TaskErrorKind::kExecutorLost, lost_task, lost_attempt, 0,
                    "executor process lost mid-task (" + classify + ")"));
      if (HandleFailure(lost_task, lost_attempt, s, error)) {
        retry_queue_.back().not_before_ms =
            SteadyMs() + policy_.BackoffMsFor(lost_task, lost_attempt + 1);
      }
    }
    const bool work_remains =
        !retry_queue_.empty() || next_fresh_ < num_tasks_ || tasks_terminal_ < num_tasks_;
    if (work_remains && slot.relaunches < supervisor_config_.max_executor_relaunches) {
      slot.relaunches += 1;
      const int budget_used = slot.relaunches;
      if (launch(s)) {
        slots[static_cast<size_t>(s)].relaunches = budget_used;
        alive_count += 1;
        stage_executor_relaunches_ += 1;
        if (driver_sink != nullptr) {
          driver_sink->InstantFor(-1, 0, TraceEventType::kExecutorRelaunch,
                                  "executor_relaunch", s);
        }
      }
    }
  };

  while (tasks_terminal_ < num_tasks_) {
    // Dispatch runnable work onto idle live executors.
    for (int s = 0; s < nslots; ++s) {
      ExecSlot& slot = slots[static_cast<size_t>(s)];
      if (!slot.alive || slot.busy) {
        continue;
      }
      Attempt a;
      if (next_work(s, &a)) {
        dispatch(s, a);
      }
    }
    if (alive_count == 0) {
      // Every executor is dead and the relaunch budget is spent; fail the
      // first still-pending task.
      int t = !retry_queue_.empty() ? retry_queue_.front().task
                                    : (next_fresh_ < num_tasks_ ? next_fresh_ : 0);
      errors_.emplace_back(
          t, std::make_exception_ptr(TaskError(
                 TaskErrorKind::kExecutorLost, t, 1, 0,
                 "all executor processes died and the relaunch budget is exhausted")));
      break;
    }

    // Poll live channels. The tick is short enough to notice heartbeat
    // deadlines and retry backoff expiries promptly.
    std::vector<struct pollfd> pfds;
    std::vector<int> pfd_slot;
    pfds.reserve(static_cast<size_t>(nslots));
    for (int s = 0; s < nslots; ++s) {
      ExecSlot& slot = slots[static_cast<size_t>(s)];
      if (slot.alive && slot.channel != nullptr) {
        pfds.push_back({slot.channel->fd(), POLLIN, 0});
        pfd_slot.push_back(s);
      }
    }
    ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/10);

    for (size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      const int s = pfd_slot[i];
      ExecSlot& slot = slots[static_cast<size_t>(s)];
      if (!slot.alive || slot.channel == nullptr) {
        continue;
      }
      const bool peer_ok = slot.channel->Pump();
      handle_frames(s);
      if (!peer_ok) {
        on_executor_death(s, "connection closed");
      }
    }

    // Liveness: an executor that has neither produced frames nor
    // heartbeated for heartbeat_timeout_ms is wedged (SIGSTOP, livelock) —
    // kill it so the death path reroutes its task.
    if (supervisor_config_.heartbeat_timeout_ms > 0) {
      const int64_t now = SteadyMs();
      for (int s = 0; s < nslots; ++s) {
        ExecSlot& slot = slots[static_cast<size_t>(s)];
        if (!slot.alive ||
            now - slot.last_heartbeat_ms <= supervisor_config_.heartbeat_timeout_ms) {
          continue;
        }
        ::kill(slot.pid, SIGKILL);
        if (slot.channel != nullptr) {
          slot.channel->Pump();
          handle_frames(s);
        }
        on_executor_death(s, "heartbeat timeout");
      }
    }
  }

  // Teardown: ask live executors to exit, close channels (EOF is a second
  // exit signal), and reap every child.
  for (int s = 0; s < nslots; ++s) {
    ExecSlot& slot = slots[static_cast<size_t>(s)];
    if (slot.alive && slot.channel != nullptr) {
      slot.channel->Write(ExecMsg::kShutdown, nullptr, 0);
    }
    slot.channel.reset();
    if (slot.pid > 0) {
      int status = 0;
      ::waitpid(slot.pid, &status, 0);
      slot.pid = -1;
    }
  }
  current_ = nullptr;
  if (driver_sink != nullptr && stage_heartbeats_ > 0) {
    // One counter sample per stage: heartbeat cadence is timing-dependent,
    // so the count is observability, never an invariant.
    driver_sink->Counter(TraceEventType::kHeartbeat, "heartbeats", stage_heartbeats_);
  }
  MergeStats(stage_stats);
  RethrowFirstError();
}

void TaskScheduler::ExecutorChildMain(int fd, int slot, const StageCodec& codec) {
  SetInForkedExecutor(true);
  WorkerContext& ctx = *contexts_[static_cast<size_t>(slot)];
  // The child's trace sink writes to fork-copied memory the driver never
  // sees; detach it so task bodies do not waste time tracing into the void.
  ctx.set_trace_sink(nullptr);
  std::mutex write_mu;
  std::atomic<bool> stop{false};
  const int64_t hb_ms = supervisor_config_.heartbeat_ms > 0 ? supervisor_config_.heartbeat_ms : 25;
  std::thread heartbeat([fd, hb_ms, &write_mu, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(hb_ms));
      if (stop.load(std::memory_order_relaxed)) {
        break;
      }
      if (!WriteFrame(fd, ExecMsg::kHeartbeat, nullptr, 0, &write_mu)) {
        break;  // driver is gone
      }
    }
  });

  ExecMsg type;
  std::vector<uint8_t> payload;
  while (ReadFrameBlocking(fd, &type, &payload)) {
    if (type == ExecMsg::kShutdown) {
      break;
    }
    if (type != ExecMsg::kRunTask || payload.size() < 9) {
      continue;
    }
    ByteReader in(payload.data(), payload.size());
    const int run_task = static_cast<int>(in.ReadU32());
    const int run_attempt = static_cast<int>(in.ReadU32());
    const bool fresh = in.ReadU8() != 0;
    try {
      if (fresh) {
        ctx.Recycle();
      }
      // Per-task stats: reset, run, ship the delta home with the result so
      // the driver accumulates exactly what in-process mode would.
      ctx.stats() = EngineStats{};
      ctx.BeginAttempt(run_attempt, policy_.task_deadline_ms);
      (*current_)(ctx, run_task);
      ByteBuffer ok;
      ok.WriteU32(static_cast<uint32_t>(run_task));
      ok.WriteU32(static_cast<uint32_t>(run_attempt));
      ByteBuffer stats_blob;
      SerializeEngineStats(ctx.stats(), &stats_blob);
      ok.WriteU32(static_cast<uint32_t>(stats_blob.size()));
      ok.WriteBytes(stats_blob.data(), stats_blob.size());
      codec.encode(run_task, &ok);
      if (!WriteFrame(fd, ExecMsg::kTaskOk, ok.data(), ok.size(), &write_mu)) {
        break;
      }
    } catch (...) {
      ByteBuffer fail;
      fail.WriteU32(static_cast<uint32_t>(run_task));
      fail.WriteU32(static_cast<uint32_t>(run_attempt));
      uint8_t is_task_error = 0;
      uint8_t kind = 0;
      int64_t ordinal = run_task;
      int64_t input_records = 0;
      std::string detail;
      try {
        throw;
      } catch (const TaskError& e) {
        is_task_error = 1;
        kind = static_cast<uint8_t>(e.kind());
        ordinal = e.task_ordinal();
        input_records = e.input_records();
        detail = e.detail();
      } catch (const std::exception& e) {
        detail = e.what();
      } catch (...) {
        detail = "unknown executor exception";
      }
      fail.WriteU8(is_task_error);
      fail.WriteU8(kind);
      fail.WriteI64(ordinal);
      fail.WriteI64(input_records);
      fail.WriteString(detail);
      // Tear the damaged context down here, not on the retry dispatch: the
      // retry may land on another executor, but THIS process must not keep
      // a poisoned heap alive either way.
      if (policy_.fresh_context_on_retry) {
        ctx.Recycle();
      }
      if (!WriteFrame(fd, ExecMsg::kTaskFail, fail.data(), fail.size(), &write_mu)) {
        break;
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  heartbeat.join();
  ::_exit(0);
}

void TaskScheduler::RunStageSerial(int num_tasks, const Task& task, EngineStats* stage_stats) {
  WorkerContext& ctx = *contexts_[0];
  for (int t = 0; t < num_tasks; ++t) {
    try {
      ThrowIfJobCancelled();
      TaskTraceScope span(ctx.trace_sink(), t, 1);
      task(ctx, t);
    } catch (...) {
      errors_.emplace_back(t, std::current_exception());
      break;  // a serial stage stops at the first failure, like the seed did
    }
  }
  MergeStats(stage_stats);
  RethrowFirstError();
}

}  // namespace gerenuk
