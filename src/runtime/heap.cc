#include "src/runtime/heap.h"

#include <algorithm>

#include "src/support/trace.h"

namespace gerenuk {

namespace {
constexpr uint64_t kHeapStartOffset = 8;  // offset 0 is the null reference
constexpr int64_t kMinFreeBlock = 16;     // enough for a free-block header

uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) & ~(a - 1); }
}  // namespace

Heap::Heap(const HeapConfig& config, KlassRegistry* shared_klasses)
    : owned_klasses_(shared_klasses == nullptr ? std::make_unique<KlassRegistry>() : nullptr),
      klasses_(shared_klasses == nullptr ? owned_klasses_.get() : shared_klasses),
      config_(config),
      capacity_(config.capacity_bytes) {
  capacity_ = AlignUp(capacity_, kHeapAlignment);
  storage_ = std::make_unique<uint8_t[]>(capacity_);
  base_ = storage_.get();

  if (config_.gc == GcKind::kMarkSweep) {
    old_ = {kHeapStartOffset, capacity_, kHeapStartOffset};
  } else if (config_.gc == GcKind::kRegion) {
    // Yak-like split: a normal (control) space collected by mark-sweep plus
    // a data region freed per epoch.
    uint64_t old_size =
        AlignUp(static_cast<uint64_t>(capacity_ * config_.old_fraction), 8) - kHeapStartOffset;
    old_ = {kHeapStartOffset, kHeapStartOffset + old_size, kHeapStartOffset};
    region_ = {old_.end, capacity_, old_.end};
  } else {
    uint64_t old_size = AlignUp(static_cast<uint64_t>(capacity_ * config_.old_fraction), 8);
    uint64_t eden_size = AlignUp(static_cast<uint64_t>(capacity_ * config_.eden_fraction), 8);
    uint64_t survivor_size = (capacity_ - kHeapStartOffset - old_size - eden_size) / 2;
    survivor_size &= ~static_cast<uint64_t>(7);
    uint64_t p = kHeapStartOffset;
    old_ = {p, p + old_size, p};
    p += old_size;
    eden_ = {p, p + eden_size, p};
    p += eden_size;
    from_ = {p, p + survivor_size, p};
    p += survivor_size;
    to_ = {p, p + survivor_size, p};
  }
}

Heap::~Heap() = default;

void Heap::InitHeader(ObjRef obj, uint32_t klass_id, uint32_t aux) {
  SetPrim<uint64_t>(obj, 0, 0);
  SetPrim<uint32_t>(obj, 8, klass_id);
  SetPrim<uint32_t>(obj, 12, aux);
}

int64_t Heap::ObjectSize(ObjRef obj) const {
  const Klass* k = klasses_->ById(ReadKlassId(obj));
  if (k->is_array()) {
    return k->ArraySize(ReadAux(obj));
  }
  return k->instance_size();
}

ObjRef Heap::TryBump(Space& space, int64_t size) {
  if (space.free() < static_cast<uint64_t>(size)) {
    return kNullRef;
  }
  ObjRef result = space.top;
  space.top += size;
  return result;
}

void Heap::MakeFreeBlock(uint64_t offset, uint64_t size) {
  GERENUK_CHECK_GE(size, static_cast<uint64_t>(kMinFreeBlock));
  SetPrim<uint64_t>(offset, 0, 0);
  SetPrim<uint32_t>(offset, 8, 0);  // klass id 0 == free block
  SetPrim<uint32_t>(offset, 12, static_cast<uint32_t>(size));
  free_list_.push_back({offset, size});
}

ObjRef Heap::TryFreeList(int64_t size) {
  for (size_t i = 0; i < free_list_.size(); ++i) {
    FreeBlock& block = free_list_[i];
    if (block.size < static_cast<uint64_t>(size)) {
      continue;
    }
    ObjRef result = block.offset;
    uint64_t remainder = block.size - size;
    free_total_ -= block.size;
    if (remainder >= static_cast<uint64_t>(kMinFreeBlock)) {
      // Split: shrink this entry in place.
      block.offset += size;
      block.size = remainder;
      SetPrim<uint64_t>(block.offset, 0, 0);
      SetPrim<uint32_t>(block.offset, 8, 0);
      SetPrim<uint32_t>(block.offset, 12, static_cast<uint32_t>(remainder));
      free_total_ += remainder;
    } else {
      free_list_.erase(free_list_.begin() + i);
    }
    return result;
  }
  return kNullRef;
}

ObjRef Heap::AllocRaw(const Klass* klass, int64_t size, uint32_t aux) {
  GERENUK_CHECK(!in_gc_) << "allocation during GC";
  ObjRef obj = kNullRef;
  if (config_.gc == GcKind::kMarkSweep || config_.gc == GcKind::kRegion) {
    if (config_.gc == GcKind::kRegion && in_epoch_) {
      // Epoch allocation: bump the region; overflow falls through to the
      // normal space (Yak would chain a new region).
      obj = TryBump(region_, size);
    }
    if (obj == kNullRef) {
      obj = TryBump(old_, size);
    }
    if (obj == kNullRef) {
      obj = TryFreeList(size);
    }
    if (obj == kNullRef) {
      MarkSweepCollect(old_.start, old_.top);
      obj = TryFreeList(size);
      if (obj == kNullRef) {
        obj = TryBump(old_, size);
      }
    }
  } else {
    // Objects too large for eden go straight to the old generation, as
    // HotSpot does with humongous allocations.
    bool huge = static_cast<uint64_t>(size) > eden_.size() / 4;
    if (!huge) {
      obj = TryBump(eden_, size);
      if (obj == kNullRef) {
        MinorCollect();
        obj = TryBump(eden_, size);
      }
    }
    if (obj == kNullRef) {
      obj = TryBump(old_, size);
      if (obj == kNullRef) {
        obj = TryFreeList(size);
      }
      if (obj == kNullRef) {
        MajorCollect();
        obj = TryBump(old_, size);
        if (obj == kNullRef) {
          obj = TryFreeList(size);
        }
      }
    }
  }
  GERENUK_CHECK(obj != kNullRef) << "managed heap out of memory allocating " << size
                                 << " bytes of " << klass->name() << " (capacity " << capacity_
                                 << ")";
  std::memset(base_ + obj, 0, size);
  SetPrim<uint32_t>(obj, 8, klass->id());
  SetPrim<uint32_t>(obj, 12, aux);
  stats_.allocated_bytes += size;
  stats_.allocated_objects += 1;
  int64_t used = used_bytes();
  if (used > peak_used_) {
    peak_used_ = used;
  }
  SyncMemoryTracker();
  return obj;
}

void Heap::SyncMemoryTracker() {
  if (memory_tracker_ == nullptr) {
    return;
  }
  int64_t used = used_bytes();
  if (used > tracker_reported_) {
    memory_tracker_->Allocated(used - tracker_reported_);
  } else if (used < tracker_reported_) {
    memory_tracker_->Freed(tracker_reported_ - used);
  }
  tracker_reported_ = used;
}

ObjRef Heap::AllocObject(const Klass* klass) {
  GERENUK_CHECK(!klass->is_array());
  return AllocRaw(klass, klass->instance_size(), 0);
}

ObjRef Heap::AllocArray(const Klass* array_klass, int64_t length) {
  GERENUK_CHECK(array_klass->is_array());
  GERENUK_CHECK(length >= 0 && length <= INT32_MAX) << "bad array length " << length;
  return AllocRaw(array_klass, array_klass->ArraySize(length), static_cast<uint32_t>(length));
}

void Heap::SetRef(ObjRef obj, int offset, ObjRef value) {
  SetPrim<ObjRef>(obj, offset, value);
  BarrierStore(obj, obj + static_cast<uint64_t>(offset), value);
}

void Heap::ASetRef(ObjRef array, int64_t index, ObjRef value) {
  const Klass* k = KlassOf(array);
  BoundsCheck(array, index);
  int offset = k->ElementOffset(index);
  SetPrim<ObjRef>(array, offset, value);
  BarrierStore(array, array + static_cast<uint64_t>(offset), value);
}

void Heap::BarrierStore(ObjRef obj, uint64_t slot, ObjRef value) {
  stats_.barrier_stores += 1;
  if (config_.gc == GcKind::kGenerational) {
    if (value != kNullRef && !InYoung(obj) && InYoung(value)) {
      uint64_t mark = ReadMark(obj);
      if ((mark & kRememberedBit) == 0) {
        WriteMark(obj, mark | kRememberedBit);
        remembered_.push_back(obj);
      }
    }
    return;
  }
  if (config_.gc == GcKind::kRegion) {
    // Yak's inter-region barrier: a reference stored from outside the region
    // into the region records the slot so epoch-end evacuation can redirect
    // it. (This is the per-reference-write overhead Figure 9 attributes to
    // Yak.)
    if (value != kNullRef && region_.Contains(value) && !region_.Contains(obj)) {
      region_remembered_.push_back(slot);
    }
  }
}

int64_t Heap::used_bytes() const {
  int64_t used = static_cast<int64_t>(old_.top - old_.start) - free_total_;
  if (config_.gc == GcKind::kGenerational) {
    used += static_cast<int64_t>(eden_.top - eden_.start);
    used += static_cast<int64_t>(from_.top - from_.start);
  } else if (config_.gc == GcKind::kRegion) {
    used += static_cast<int64_t>(region_.top - region_.start);
  }
  return used;
}

// ---------------------------------------------------------------------------
// Yak-like epochs.
// ---------------------------------------------------------------------------

void Heap::EpochStart() {
  GERENUK_CHECK(config_.gc == GcKind::kRegion) << "epochs require GcKind::kRegion";
  GERENUK_CHECK(!in_epoch_) << "nested epochs are not supported";
  in_epoch_ = true;
  region_remembered_.clear();
}

ObjRef Heap::EvacuateRegionObject(ObjRef obj) {
  uint64_t mark = ReadMark(obj);
  if ((mark & kForwardBit) != 0) {
    return (mark >> kForwardShift) << 3;
  }
  int64_t size = ObjectSize(obj);
  ObjRef target = TryBump(old_, size);
  if (target == kNullRef) {
    target = TryFreeList(size);
  }
  GERENUK_CHECK(target != kNullRef) << "control space exhausted during region evacuation";
  std::memcpy(base_ + target, base_ + obj, size);
  WriteMark(target, 0);
  WriteMark(obj, kForwardBit | ((target >> 3) << kForwardShift));
  stats_.promoted_bytes += size;
  region_evacuation_worklist_.push_back(target);
  return target;
}

void Heap::EvacuateRegionSlot(ObjRef* slot) {
  if (*slot != kNullRef && region_.Contains(*slot)) {
    *slot = EvacuateRegionObject(*slot);
  }
}

void Heap::EpochEnd() {
  GERENUK_CHECK(in_epoch_);
  TraceSpan gc_span(trace_sink_, TraceEventType::kGcPause, "region_gc");
  Stopwatch watch;
  watch.Start();
  in_gc_ = true;
  stats_.minor_gcs += 1;  // counted as a (cheap) region collection

  // Escape analysis at run time: everything reachable from outside the
  // region — via barrier-recorded slots or global roots — is copied out;
  // the rest of the region dies wholesale, no scanning needed.
  region_evacuation_worklist_.clear();
  for (uint64_t slot : region_remembered_) {
    ObjRef value = GetPrim<ObjRef>(slot, 0);
    if (value != kNullRef && region_.Contains(value)) {
      SetPrim<ObjRef>(slot, 0, EvacuateRegionObject(value));
    }
  }
  ForEachRoot(&Heap::EvacuateRegionSlot);
  while (!region_evacuation_worklist_.empty()) {
    ObjRef obj = region_evacuation_worklist_.back();
    region_evacuation_worklist_.pop_back();
    const Klass* k = klasses_->ById(ReadKlassId(obj));
    if (k->is_array()) {
      if (k->element_kind() == FieldKind::kRef) {
        int64_t len = ReadAux(obj);
        for (int64_t i = 0; i < len; ++i) {
          int off = k->ElementOffset(i);
          ObjRef child = GetPrim<ObjRef>(obj, off);
          if (child != kNullRef && region_.Contains(child)) {
            SetPrim<ObjRef>(obj, off, EvacuateRegionObject(child));
          }
        }
      }
    } else {
      for (int off : k->ref_offsets()) {
        ObjRef child = GetPrim<ObjRef>(obj, off);
        if (child != kNullRef && region_.Contains(child)) {
          SetPrim<ObjRef>(obj, off, EvacuateRegionObject(child));
        }
      }
    }
  }

  region_.top = region_.start;  // whole-region free
  region_remembered_.clear();
  in_epoch_ = false;
  in_gc_ = false;
  watch.Stop();
  stats_.gc_nanos += watch.ElapsedNanos();
  if (phase_times_ != nullptr) {
    phase_times_->Add(Phase::kGc, watch.ElapsedNanos());
  }
  SyncMemoryTracker();
}

void Heap::AddRootVector(std::vector<ObjRef>* roots) { root_vectors_.push_back(roots); }

void Heap::RemoveRootVector(std::vector<ObjRef>* roots) {
  auto it = std::find(root_vectors_.begin(), root_vectors_.end(), roots);
  GERENUK_CHECK(it != root_vectors_.end());
  root_vectors_.erase(it);
}

void Heap::AddRootSlot(ObjRef* slot) { root_slots_.push_back(slot); }

void Heap::RemoveRootSlot(ObjRef* slot) {
  auto it = std::find(root_slots_.begin(), root_slots_.end(), slot);
  GERENUK_CHECK(it != root_slots_.end());
  root_slots_.erase(it);
}

void Heap::AddRootProvider(RootProvider* provider) { root_providers_.push_back(provider); }

void Heap::RemoveRootProvider(RootProvider* provider) {
  auto it = std::find(root_providers_.begin(), root_providers_.end(), provider);
  GERENUK_CHECK(it != root_providers_.end());
  root_providers_.erase(it);
}

void Heap::ForEachRoot(void (Heap::*visit)(ObjRef*)) {
  for (ObjRef* slot : root_slots_) {
    (this->*visit)(slot);
  }
  for (std::vector<ObjRef>* vec : root_vectors_) {
    for (ObjRef& slot : *vec) {
      (this->*visit)(&slot);
    }
  }
  for (RootProvider* provider : root_providers_) {
    provider->VisitRoots([this, visit](ObjRef* slot) { (this->*visit)(slot); });
  }
}

void Heap::CollectNow() {
  if (config_.gc == GcKind::kMarkSweep) {
    MarkSweepCollect(old_.start, old_.top);
  } else {
    MajorCollect();
    MinorCollect();
  }
}

// ---------------------------------------------------------------------------
// Mark-sweep (full heap in kMarkSweep mode; old generation in major GCs).
// ---------------------------------------------------------------------------

void Heap::MarkSlot(ObjRef* slot) {
  ObjRef obj = *slot;
  if (obj == kNullRef) {
    return;
  }
  uint64_t mark = ReadMark(obj);
  if ((mark & kMarkBit) != 0) {
    return;
  }
  WriteMark(obj, mark | kMarkBit);
  mark_worklist_->push_back(obj);
}

void Heap::TraceObject(ObjRef obj, std::vector<ObjRef>& worklist) {
  const Klass* k = klasses_->ById(ReadKlassId(obj));
  if (k->is_array()) {
    if (k->element_kind() == FieldKind::kRef) {
      int64_t len = ReadAux(obj);
      for (int64_t i = 0; i < len; ++i) {
        ObjRef child = GetPrim<ObjRef>(obj, k->ElementOffset(i));
        if (child != kNullRef && (ReadMark(child) & kMarkBit) == 0) {
          WriteMark(child, ReadMark(child) | kMarkBit);
          worklist.push_back(child);
        }
      }
    }
    return;
  }
  for (int offset : k->ref_offsets()) {
    ObjRef child = GetPrim<ObjRef>(obj, offset);
    if (child != kNullRef && (ReadMark(child) & kMarkBit) == 0) {
      WriteMark(child, ReadMark(child) | kMarkBit);
      worklist.push_back(child);
    }
  }
}

void Heap::MarkFromRoots(std::vector<ObjRef>& worklist) {
  mark_worklist_ = &worklist;
  ForEachRoot(&Heap::MarkSlot);
  mark_worklist_ = nullptr;
  while (!worklist.empty()) {
    ObjRef obj = worklist.back();
    worklist.pop_back();
    TraceObject(obj, worklist);
  }
}

void Heap::MarkSweepCollect(uint64_t sweep_start, uint64_t sweep_end) {
  TraceSpan gc_span(trace_sink_, TraceEventType::kGcPause, "major_gc");
  Stopwatch watch;
  watch.Start();
  in_gc_ = true;
  stats_.major_gcs += 1;

  // kRegion: flush the epoch remembered set before sweeping. Recorded slots
  // are guaranteed valid only until the next collection (their containing
  // objects may die), so their referents are conservatively evacuated now.
  if (config_.gc == GcKind::kRegion && in_epoch_) {
    region_evacuation_worklist_.clear();
    for (uint64_t slot : region_remembered_) {
      ObjRef value = GetPrim<ObjRef>(slot, 0);
      if (value != kNullRef && region_.Contains(value)) {
        SetPrim<ObjRef>(slot, 0, EvacuateRegionObject(value));
      }
    }
    region_remembered_.clear();
    while (!region_evacuation_worklist_.empty()) {
      ObjRef obj = region_evacuation_worklist_.back();
      region_evacuation_worklist_.pop_back();
      const Klass* k = klasses_->ById(ReadKlassId(obj));
      if (k->is_array()) {
        if (k->element_kind() == FieldKind::kRef) {
          int64_t len = ReadAux(obj);
          for (int64_t i = 0; i < len; ++i) {
            int off = k->ElementOffset(i);
            ObjRef child = GetPrim<ObjRef>(obj, off);
            if (child != kNullRef && region_.Contains(child)) {
              SetPrim<ObjRef>(obj, off, EvacuateRegionObject(child));
            }
          }
        }
      } else {
        for (int off : k->ref_offsets()) {
          ObjRef child = GetPrim<ObjRef>(obj, off);
          if (child != kNullRef && region_.Contains(child)) {
            SetPrim<ObjRef>(obj, off, EvacuateRegionObject(child));
          }
        }
      }
    }
  }

  std::vector<ObjRef> worklist;
  MarkFromRoots(worklist);

  // In generational mode the remembered set must only retain live entries.
  if (config_.gc == GcKind::kGenerational) {
    std::vector<ObjRef> live_remembered;
    for (ObjRef obj : remembered_) {
      if ((ReadMark(obj) & kMarkBit) != 0) {
        live_remembered.push_back(obj);
      }
    }
    remembered_.swap(live_remembered);
  }

  // Sweep [sweep_start, sweep_end): unmarked objects become free blocks,
  // adjacent free space coalesces. The walk relies on every object being
  // self-describing (klass id 0 + aux size for free blocks).
  free_list_.clear();
  free_total_ = 0;
  uint64_t offset = sweep_start;
  uint64_t free_run_start = 0;
  uint64_t free_run_size = 0;
  auto flush_free_run = [&]() {
    if (free_run_size >= static_cast<uint64_t>(kMinFreeBlock)) {
      MakeFreeBlock(free_run_start, free_run_size);
      free_total_ += free_run_size;
    }
    free_run_size = 0;
  };
  while (offset < sweep_end) {
    uint32_t klass_id = ReadKlassId(offset);
    uint64_t size;
    bool live = false;
    if (klass_id == 0) {
      size = ReadAux(offset);
    } else {
      size = ObjectSize(offset);
      uint64_t mark = ReadMark(offset);
      if ((mark & kMarkBit) != 0) {
        WriteMark(offset, mark & ~kMarkBit);
        live = true;
      }
    }
    if (live) {
      flush_free_run();
    } else {
      if (free_run_size == 0) {
        free_run_start = offset;
      }
      free_run_size += size;
    }
    offset += size;
  }
  flush_free_run();

  // Clear mark bits on surviving objects in spaces the sweep did not cover.
  if (config_.gc == GcKind::kGenerational) {
    for (Space* space : {&eden_, &from_}) {
      uint64_t p = space->start;
      while (p < space->top) {
        uint64_t mark = ReadMark(p);
        WriteMark(p, mark & ~kMarkBit);
        p += ObjectSize(p);
      }
    }
  } else if (config_.gc == GcKind::kRegion) {
    uint64_t p = region_.start;
    while (p < region_.top) {
      uint64_t mark = ReadMark(p);
      WriteMark(p, mark & ~kMarkBit);
      p += ObjectSize(p);
    }
  }

  in_gc_ = false;
  watch.Stop();
  stats_.gc_nanos += watch.ElapsedNanos();
  if (phase_times_ != nullptr) {
    phase_times_->Add(Phase::kGc, watch.ElapsedNanos());
  }
  SyncMemoryTracker();
}

// ---------------------------------------------------------------------------
// Generational copying scavenge.
// ---------------------------------------------------------------------------

ObjRef Heap::Evacuate(ObjRef obj) {
  uint64_t mark = ReadMark(obj);
  if ((mark & kForwardBit) != 0) {
    return (mark >> kForwardShift) << 3;
  }
  int64_t size = ObjectSize(obj);
  int age = static_cast<int>((mark & kAgeMask) >> kAgeShift);
  ObjRef target = kNullRef;
  bool promoted = false;
  if (age + 1 >= config_.promotion_age) {
    target = TryBump(old_, size);
    if (target == kNullRef) {
      target = TryFreeList(size);
    }
    promoted = target != kNullRef;
  }
  if (target == kNullRef) {
    target = TryBump(to_, size);
  }
  if (target == kNullRef) {
    // Survivor overflow: promote regardless of age.
    target = TryBump(old_, size);
    if (target == kNullRef) {
      target = TryFreeList(size);
    }
    promoted = target != kNullRef;
  }
  GERENUK_CHECK(target != kNullRef) << "promotion failure: old generation exhausted";
  std::memcpy(base_ + target, base_ + obj, size);
  uint64_t new_age = std::min(age + 1, 15);
  WriteMark(target, new_age << kAgeShift);
  WriteMark(obj, kForwardBit | ((target >> 3) << kForwardShift));
  if (promoted) {
    stats_.promoted_bytes += size;
    promoted_worklist_.push_back(target);
  } else {
    stats_.copied_bytes += size;
  }
  return target;
}

void Heap::ScavengeSlot(ObjRef* slot) {
  ObjRef obj = *slot;
  if (obj == kNullRef || !InYoung(obj)) {
    return;
  }
  *slot = Evacuate(obj);
}

void Heap::ScavengeObjectFields(ObjRef obj, bool* saw_young) {
  const Klass* k = klasses_->ById(ReadKlassId(obj));
  if (k->is_array()) {
    if (k->element_kind() == FieldKind::kRef) {
      int64_t len = ReadAux(obj);
      for (int64_t i = 0; i < len; ++i) {
        int off = k->ElementOffset(i);
        ObjRef child = GetPrim<ObjRef>(obj, off);
        if (child != kNullRef && InYoung(child)) {
          ObjRef moved = Evacuate(child);
          SetPrim<ObjRef>(obj, off, moved);
          if (InYoung(moved)) {
            *saw_young = true;
          }
        }
      }
    }
    return;
  }
  for (int off : k->ref_offsets()) {
    ObjRef child = GetPrim<ObjRef>(obj, off);
    if (child != kNullRef && InYoung(child)) {
      ObjRef moved = Evacuate(child);
      SetPrim<ObjRef>(obj, off, moved);
      if (InYoung(moved)) {
        *saw_young = true;
      }
    }
  }
}

void Heap::MinorCollect() {
  // If the worst case (everything promotes) cannot fit in the old
  // generation's free space, do a major collection first so the scavenge
  // cannot hit a promotion failure mid-copy.
  int64_t young_used = static_cast<int64_t>((eden_.top - eden_.start) + (from_.top - from_.start));
  int64_t old_free =
      static_cast<int64_t>(old_.end - old_.top) + free_total_ + static_cast<int64_t>(to_.size());
  if (old_free < young_used) {
    MarkSweepCollect(old_.start, old_.top);
  }

  TraceSpan gc_span(trace_sink_, TraceEventType::kGcPause, "minor_gc");
  Stopwatch watch;
  watch.Start();
  in_gc_ = true;
  stats_.minor_gcs += 1;

  promoted_worklist_.clear();
  ForEachRoot(&Heap::ScavengeSlot);

  // Old-to-young references recorded by the write barrier.
  std::vector<ObjRef> old_remembered;
  old_remembered.swap(remembered_);
  std::vector<ObjRef> still_remembered;
  for (ObjRef obj : old_remembered) {
    bool saw_young = false;
    ScavengeObjectFields(obj, &saw_young);
    if (saw_young) {
      still_remembered.push_back(obj);
    } else {
      WriteMark(obj, ReadMark(obj) & ~kRememberedBit);
    }
  }

  // Cheney scan of to-space, interleaved with draining promotions.
  uint64_t scan = to_.start;
  while (scan < to_.top || !promoted_worklist_.empty()) {
    while (!promoted_worklist_.empty()) {
      ObjRef promoted = promoted_worklist_.back();
      promoted_worklist_.pop_back();
      bool saw_young = false;
      ScavengeObjectFields(promoted, &saw_young);
      if (saw_young) {
        uint64_t mark = ReadMark(promoted);
        if ((mark & kRememberedBit) == 0) {
          WriteMark(promoted, mark | kRememberedBit);
          still_remembered.push_back(promoted);
        }
      }
    }
    if (scan < to_.top) {
      bool unused = false;
      ScavengeObjectFields(scan, &unused);
      scan += ObjectSize(scan);
    }
  }
  remembered_.swap(still_remembered);

  eden_.top = eden_.start;
  from_.top = from_.start;
  std::swap(from_, to_);

  in_gc_ = false;
  watch.Stop();
  stats_.gc_nanos += watch.ElapsedNanos();
  if (phase_times_ != nullptr) {
    phase_times_->Add(Phase::kGc, watch.ElapsedNanos());
  }
  SyncMemoryTracker();
}

void Heap::MajorCollect() { MarkSweepCollect(old_.start, old_.top); }

}  // namespace gerenuk
