// RAII GC-root scope: keeps a set of references alive (and updated when the
// copying collector moves their targets) for the duration of a C++ scope.
// Every piece of code that allocates while holding managed references must
// hold them through a RootScope — the same discipline HotSpot's HandleScope
// imposes on VM-internal code.
#ifndef SRC_RUNTIME_ROOTS_H_
#define SRC_RUNTIME_ROOTS_H_

#include <cstddef>
#include <vector>

#include "src/runtime/heap.h"

namespace gerenuk {

class RootScope {
 public:
  explicit RootScope(Heap& heap) : heap_(heap) { heap_.AddRootVector(&slots_); }
  ~RootScope() { heap_.RemoveRootVector(&slots_); }
  RootScope(const RootScope&) = delete;
  RootScope& operator=(const RootScope&) = delete;

  // Registers `ref` as a root; returns its slot index. Read the (possibly
  // GC-updated) value back with Get before every use that follows an
  // allocation.
  size_t Push(ObjRef ref) {
    slots_.push_back(ref);
    return slots_.size() - 1;
  }
  ObjRef Get(size_t index) const { return slots_[index]; }
  void Set(size_t index, ObjRef ref) { slots_[index] = ref; }
  void Pop() { slots_.pop_back(); }
  size_t size() const { return slots_.size(); }

 private:
  Heap& heap_;
  std::vector<ObjRef> slots_;
};

}  // namespace gerenuk

#endif  // SRC_RUNTIME_ROOTS_H_
