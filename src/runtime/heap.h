// A managed mini-heap that reproduces the JVM cost model Gerenuk attacks:
// 16-byte object headers, 8-byte reference fields, GC-traced object graphs,
// write barriers on every reference store, and bounds-checked array access.
//
// Two collectors are provided:
//   * kMarkSweep     — single space, stop-the-world mark-sweep with a
//                      first-fit free list (a simple baseline collector).
//   * kGenerational  — eden + two survivor semispaces (copying scavenge)
//                      over a mark-sweep old generation with a remembered-set
//                      write barrier; this plays the role of OpenJDK 8's
//                      default Parallel Scavenge in the paper's experiments.
//
// References are byte offsets from the heap base (ObjRef), so the copying
// collector can move objects by updating offsets in registered roots.
// Clients must keep every live reference in a registered root (vector or
// slot) across any allocation — exactly the discipline a VM imposes.
#ifndef SRC_RUNTIME_HEAP_H_
#define SRC_RUNTIME_HEAP_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "src/runtime/klass.h"
#include "src/support/logging.h"
#include "src/support/metrics.h"

namespace gerenuk {

class TraceSink;  // src/support/trace.h

// Byte offset from the heap base. 0 is the null reference.
using ObjRef = uint64_t;
inline constexpr ObjRef kNullRef = 0;

// Clients with non-trivially-shaped root sets (e.g. interpreter frames that
// mix reference and primitive slots) implement this to expose their live
// references to the collector.
class RootProvider {
 public:
  virtual ~RootProvider() = default;
  // Must invoke `visit` on every live ObjRef slot; the GC may update slots.
  virtual void VisitRoots(const std::function<void(ObjRef*)>& visit) = 0;
};

// kMarkSweep    — single-space stop-the-world mark-sweep (simple baseline).
// kGenerational — copying scavenge over mark-sweep old gen (the stand-in for
//                 OpenJDK 8's Parallel Scavenge).
// kRegion       — Yak-like: between EpochStart/EpochEnd, allocations go to a
//                 region that is freed wholesale at epoch end; objects still
//                 referenced from outside the region (tracked by the write
//                 barrier) are evacuated to the normal space first. This is
//                 the comparison system of the paper's Figure 9.
enum class GcKind : uint8_t { kMarkSweep, kGenerational, kRegion };

struct HeapConfig {
  size_t capacity_bytes = 64u << 20;
  GcKind gc = GcKind::kGenerational;
  // Generational sizing (fractions of capacity). Survivor gets the remainder
  // split in two.
  double old_fraction = 0.55;
  double eden_fraction = 0.35;
  int promotion_age = 2;
};

struct HeapStats {
  int64_t minor_gcs = 0;
  int64_t major_gcs = 0;
  int64_t gc_nanos = 0;
  int64_t allocated_bytes = 0;
  int64_t allocated_objects = 0;
  int64_t barrier_stores = 0;
  int64_t copied_bytes = 0;
  int64_t promoted_bytes = 0;
};

class Heap {
 public:
  // With `shared_klasses == nullptr` the heap owns its own class registry.
  // A non-null registry is shared (not owned): per-worker heaps of a
  // parallel engine all reference the engine heap's registry, so Klass
  // pointers and ids agree across every executor context. All class
  // definitions must complete before parallel stage execution begins — the
  // registry itself is not synchronized.
  explicit Heap(const HeapConfig& config, KlassRegistry* shared_klasses = nullptr);
  ~Heap();
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  const KlassRegistry& klasses() const { return *klasses_; }
  KlassRegistry& klasses() { return *klasses_; }

  // ---- allocation ----
  ObjRef AllocObject(const Klass* klass);
  ObjRef AllocArray(const Klass* array_klass, int64_t length);

  // ---- field access (bounds via klass layout are the caller's contract;
  //      null checks are enforced here as the VM would) ----
  template <typename T>
  T GetPrim(ObjRef obj, int offset) const {
    GERENUK_CHECK_NE(obj, kNullRef);
    T v;
    std::memcpy(&v, base_ + obj + offset, sizeof(T));
    return v;
  }
  template <typename T>
  void SetPrim(ObjRef obj, int offset, T value) {
    GERENUK_CHECK_NE(obj, kNullRef);
    std::memcpy(base_ + obj + offset, &value, sizeof(T));
  }

  ObjRef GetRef(ObjRef obj, int offset) const { return GetPrim<ObjRef>(obj, offset); }
  // Reference store: performs the generational write barrier.
  void SetRef(ObjRef obj, int offset, ObjRef value);

  // ---- array access (bounds-checked, as the JVM does on every access) ----
  int64_t ArrayLength(ObjRef array) const {
    GERENUK_CHECK_NE(array, kNullRef);
    return ReadAux(array);
  }
  template <typename T>
  T AGet(ObjRef array, int64_t index) const {
    const Klass* k = KlassOf(array);
    BoundsCheck(array, index);
    return GetPrim<T>(array, k->ElementOffset(index));
  }
  template <typename T>
  void ASet(ObjRef array, int64_t index, T value) {
    const Klass* k = KlassOf(array);
    BoundsCheck(array, index);
    SetPrim<T>(array, k->ElementOffset(index), value);
  }
  ObjRef AGetRef(ObjRef array, int64_t index) const { return AGet<ObjRef>(array, index); }
  void ASetRef(ObjRef array, int64_t index, ObjRef value);

  const Klass* KlassOf(ObjRef obj) const {
    GERENUK_CHECK_NE(obj, kNullRef);
    return klasses_->ById(ReadKlassId(obj));
  }

  // ---- roots ----
  // The GC treats every element of every registered vector and every
  // registered slot as a root, updating them if objects move.
  void AddRootVector(std::vector<ObjRef>* roots);
  void RemoveRootVector(std::vector<ObjRef>* roots);
  void AddRootSlot(ObjRef* slot);
  void RemoveRootSlot(ObjRef* slot);
  void AddRootProvider(RootProvider* provider);
  void RemoveRootProvider(RootProvider* provider);

  // ---- Yak-like epochs (kRegion only) ----
  // Data-path allocations between EpochStart and EpochEnd land in the
  // region; EpochEnd evacuates escaping objects and frees the region.
  void EpochStart();
  void EpochEnd();
  bool in_epoch() const { return in_epoch_; }

  // ---- GC control & accounting ----
  void CollectNow();  // full collection, regardless of occupancy
  const HeapStats& stats() const { return stats_; }
  void ResetStats() { stats_ = HeapStats{}; }
  // Bytes currently occupied by objects (post-allocation, pre-collection).
  int64_t used_bytes() const;
  int64_t peak_used_bytes() const { return peak_used_; }
  size_t capacity() const { return capacity_; }
  // When set, GC pause time is also charged to Phase::kGc of this tracker.
  void set_phase_times(PhaseTimes* times) { phase_times_ = times; }
  // When set, every collection pause is also emitted as a kGcPause trace
  // span into this sink (the owning worker's, or the driver's for the
  // engine heap). Null = tracing off.
  void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }
  // When set, live heap bytes are mirrored into an external tracker so an
  // engine can observe the *combined* (heap + native buffer) footprint the
  // way the paper's pmap sampling observes process memory.
  void set_memory_tracker(MemoryTracker* tracker) {
    memory_tracker_ = tracker;
    tracker_reported_ = 0;
    SyncMemoryTracker();
  }

 private:
  // Mark-word bit assignments (offset 0 of every object):
  //   bit 0      mark bit (mark-sweep)
  //   bit 1      forwarded bit (copying scavenge)
  //   bit 2      remembered-set membership (old objects with young refs)
  //   bits 3-6   age (tenuring counter)
  //   bits 7-63  forwarding offset >> 3 when forwarded
  static constexpr uint64_t kMarkBit = 1u << 0;
  static constexpr uint64_t kForwardBit = 1u << 1;
  static constexpr uint64_t kRememberedBit = 1u << 2;
  static constexpr uint64_t kAgeShift = 3;
  static constexpr uint64_t kAgeMask = 0xFull << kAgeShift;
  static constexpr uint64_t kForwardShift = 7;

  struct Space {
    uint64_t start = 0;
    uint64_t end = 0;
    uint64_t top = 0;  // bump pointer
    uint64_t size() const { return end - start; }
    uint64_t free() const { return end - top; }
    bool Contains(ObjRef ref) const { return ref >= start && ref < end; }
  };

  struct FreeBlock {
    uint64_t offset;
    uint64_t size;
  };

  uint64_t ReadMark(ObjRef obj) const { return GetPrim<uint64_t>(obj, 0); }
  void WriteMark(ObjRef obj, uint64_t mark) { SetPrim<uint64_t>(obj, 0, mark); }
  uint32_t ReadKlassId(ObjRef obj) const { return GetPrim<uint32_t>(obj, 8); }
  uint32_t ReadAux(ObjRef obj) const { return GetPrim<uint32_t>(obj, 12); }
  void InitHeader(ObjRef obj, uint32_t klass_id, uint32_t aux);

  void BoundsCheck(ObjRef array, int64_t index) const {
    int64_t len = ArrayLength(array);
    GERENUK_CHECK(index >= 0 && index < len)
        << "array index " << index << " out of bounds [0," << len << ")";
  }

  int64_t ObjectSize(ObjRef obj) const;
  bool InYoung(ObjRef ref) const {
    return eden_.Contains(ref) || from_.Contains(ref) || to_.Contains(ref);
  }

  ObjRef AllocRaw(const Klass* klass, int64_t size, uint32_t aux);
  ObjRef TryBump(Space& space, int64_t size);
  ObjRef TryFreeList(int64_t size);
  void MakeFreeBlock(uint64_t offset, uint64_t size);
  void BarrierStore(ObjRef obj, uint64_t slot, ObjRef value);

  // Collectors.
  void MinorCollect();
  void MajorCollect();
  void MarkSweepCollect(uint64_t sweep_start, uint64_t sweep_end);
  void MarkFromRoots(std::vector<ObjRef>& worklist);
  void TraceObject(ObjRef obj, std::vector<ObjRef>& worklist);
  // Copying scavenge helpers.
  ObjRef Evacuate(ObjRef obj);
  void ScavengeSlot(ObjRef* slot);
  void ScavengeObjectFields(ObjRef obj, bool* saw_young);
  void ForEachRoot(void (Heap::*visit)(ObjRef*));
  void MarkSlot(ObjRef* slot);
  std::vector<ObjRef>* mark_worklist_ = nullptr;

  std::unique_ptr<KlassRegistry> owned_klasses_;
  KlassRegistry* klasses_;  // owned_klasses_.get() or the shared registry
  HeapConfig config_;
  size_t capacity_;
  std::unique_ptr<uint8_t[]> storage_;
  uint8_t* base_;

  // kMarkSweep: only `old_` is used (covers the whole heap).
  // kGenerational: old_ + eden_ + from_ + to_.
  Space old_;
  Space eden_;
  Space from_;
  Space to_;
  std::vector<FreeBlock> free_list_;
  int64_t free_total_ = 0;  // total bytes on the free list

  std::vector<std::vector<ObjRef>*> root_vectors_;
  std::vector<ObjRef*> root_slots_;
  std::vector<RootProvider*> root_providers_;
  std::vector<ObjRef> remembered_;  // old objects that may hold young refs

  // kRegion state.
  Space region_;
  bool in_epoch_ = false;
  std::vector<uint64_t> region_remembered_;  // heap slots referencing the region
  void EvacuateRegionSlot(ObjRef* slot);
  ObjRef EvacuateRegionObject(ObjRef obj);
  std::vector<ObjRef> region_evacuation_worklist_;

  // Scavenge state (valid during MinorCollect).
  std::vector<ObjRef> promoted_worklist_;

  void SyncMemoryTracker();

  HeapStats stats_;
  int64_t peak_used_ = 0;
  PhaseTimes* phase_times_ = nullptr;
  TraceSink* trace_sink_ = nullptr;
  MemoryTracker* memory_tracker_ = nullptr;
  int64_t tracker_reported_ = 0;
  bool in_gc_ = false;
};

}  // namespace gerenuk

#endif  // SRC_RUNTIME_HEAP_H_
