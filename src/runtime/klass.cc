#include "src/runtime/klass.h"

#include <algorithm>

namespace gerenuk {

const char* FieldKindName(FieldKind kind) {
  switch (kind) {
    case FieldKind::kBool:
      return "bool";
    case FieldKind::kI8:
      return "i8";
    case FieldKind::kI16:
      return "i16";
    case FieldKind::kChar:
      return "char";
    case FieldKind::kI32:
      return "i32";
    case FieldKind::kI64:
      return "i64";
    case FieldKind::kF32:
      return "f32";
    case FieldKind::kF64:
      return "f64";
    case FieldKind::kRef:
      return "ref";
  }
  return "?";
}

bool KlassHasFixedInlineSize(const Klass* klass) {
  if (klass->is_array()) {
    return false;
  }
  for (const FieldInfo& field : klass->fields()) {
    if (field.kind == FieldKind::kRef && !KlassHasFixedInlineSize(field.target)) {
      return false;
    }
  }
  return true;
}

const FieldInfo* Klass::FindField(const std::string& field_name) const {
  for (const FieldInfo& f : fields_) {
    if (f.name == field_name) {
      return &f;
    }
  }
  return nullptr;
}

KlassRegistry::KlassRegistry() = default;
KlassRegistry::~KlassRegistry() = default;

const Klass* KlassRegistry::DefineClass(const std::string& name, std::vector<FieldInfo> fields) {
  GERENUK_CHECK(by_name_.find(name) == by_name_.end()) << "class redefined: " << name;
  auto klass = std::unique_ptr<Klass>(new Klass());
  klass->id_ = static_cast<uint32_t>(klasses_.size() + 1);  // id 0 reserved for "free block"
  klass->name_ = name;

  // HotSpot-style packing: lay out fields largest-alignment-first so padding
  // holes are minimized, preserving declaration order within each size class.
  std::vector<FieldInfo*> order;
  order.reserve(fields.size());
  for (FieldInfo& f : fields) {
    order.push_back(&f);
  }
  std::stable_sort(order.begin(), order.end(), [](const FieldInfo* a, const FieldInfo* b) {
    return FieldKindSize(a->kind) > FieldKindSize(b->kind);
  });
  int offset = kObjectHeaderBytes;
  for (FieldInfo* f : order) {
    int size = FieldKindSize(f->kind);
    offset = (offset + size - 1) & ~(size - 1);
    f->offset = offset;
    offset += size;
    if (f->kind == FieldKind::kRef) {
      klass->ref_offsets_.push_back(f->offset);
    }
  }
  klass->instance_size_ = (offset + kHeapAlignment - 1) & ~(kHeapAlignment - 1);
  klass->fields_ = std::move(fields);

  Klass* raw = klass.get();
  klasses_.push_back(std::move(klass));
  by_name_[name] = raw;
  return raw;
}

const Klass* KlassRegistry::DefineArray(FieldKind element_kind, const Klass* element_klass) {
  std::string name;
  if (element_kind == FieldKind::kRef) {
    GERENUK_CHECK(element_klass != nullptr);
    name = element_klass->name() + "[]";
  } else {
    name = std::string(FieldKindName(element_kind)) + "[]";
  }
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return it->second;
  }
  auto klass = std::unique_ptr<Klass>(new Klass());
  klass->id_ = static_cast<uint32_t>(klasses_.size() + 1);
  klass->name_ = name;
  klass->is_array_ = true;
  klass->element_kind_ = element_kind;
  klass->element_klass_ = element_klass;
  // Length lives right after the header; elements start at the next slot
  // aligned to the element size (HotSpot aligns 8-byte elements to 8).
  int elem_size = FieldKindSize(element_kind);
  int offset = kArrayLengthOffset + 4;
  offset = (offset + elem_size - 1) & ~(elem_size - 1);
  klass->elements_offset_ = offset;

  Klass* raw = klass.get();
  klasses_.push_back(std::move(klass));
  by_name_[name] = raw;
  return raw;
}

const Klass* KlassRegistry::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const Klass* KlassRegistry::ById(uint32_t id) const {
  GERENUK_CHECK_GE(id, 1u);
  GERENUK_CHECK_LE(id, klasses_.size());
  return klasses_[id - 1].get();
}

}  // namespace gerenuk
