// Class metadata for the managed mini-runtime.
//
// The paper's baseline costs come from the JVM object model: every data item
// is an object with a 16-byte header, reference fields are 8-byte pointers,
// and arrays carry their own header + length. Klass describes exactly that
// layout so the heap, the GC, the serializers, and the Gerenuk data-structure
// analyzer all agree on where every field lives.
#ifndef SRC_RUNTIME_KLASS_H_
#define SRC_RUNTIME_KLASS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/logging.h"

namespace gerenuk {

// Primitive field kinds plus kRef (a pointer to another managed object).
enum class FieldKind : uint8_t {
  kBool,
  kI8,
  kI16,
  kChar,
  kI32,
  kI64,
  kF32,
  kF64,
  kRef,
};

inline int FieldKindSize(FieldKind kind) {
  switch (kind) {
    case FieldKind::kBool:
    case FieldKind::kI8:
      return 1;
    case FieldKind::kI16:
    case FieldKind::kChar:
      return 2;
    case FieldKind::kI32:
    case FieldKind::kF32:
      return 4;
    case FieldKind::kI64:
    case FieldKind::kF64:
    case FieldKind::kRef:
      return 8;
  }
  return 0;
}

const char* FieldKindName(FieldKind kind);

class Klass;

// True when every instance of `klass` has the same inlined body size — i.e.
// no array is reachable in its field hierarchy. Records of fixed-size
// classes need no per-record size prefix in the inline format.
bool KlassHasFixedInlineSize(const Klass* klass);

// One declared instance field. For kRef fields, `target` names the declared
// class of the referent (used by the data structure analyzer's DFS).
struct FieldInfo {
  std::string name;
  FieldKind kind = FieldKind::kI32;
  const Klass* target = nullptr;  // non-null iff kind == kRef
  int offset = 0;                 // byte offset within the object, set by layout
};

// JVM-like object layout constants (64-bit HotSpot without compressed oops):
// an object header is two words — mark word + klass pointer.
inline constexpr int kObjectHeaderBytes = 16;
inline constexpr int kHeapAlignment = 8;
// Arrays store a 32-bit length immediately after the header; elements follow,
// 8-byte aligned (so there are 4 bytes of padding before 8-byte elements).
inline constexpr int kArrayLengthOffset = kObjectHeaderBytes;

// Metadata for one managed class or array type.
//
// Instances are created and owned by a KlassRegistry; identity equality is
// used everywhere (one Klass per distinct type per registry).
class Klass {
 public:
  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  bool is_array() const { return is_array_; }

  // --- instance classes ---
  const std::vector<FieldInfo>& fields() const { return fields_; }
  // Byte size of one instance, header included, 8-byte aligned.
  int instance_size() const { return instance_size_; }
  // Offsets of all kRef fields; the GC trace loop uses this.
  const std::vector<int>& ref_offsets() const { return ref_offsets_; }
  const FieldInfo* FindField(const std::string& field_name) const;
  const FieldInfo& field(int index) const { return fields_[index]; }

  // --- array classes ---
  FieldKind element_kind() const { return element_kind_; }
  const Klass* element_klass() const { return element_klass_; }
  int element_size() const { return FieldKindSize(element_kind_); }
  // Offset of element `i` in an array object of this klass.
  int ElementOffset(int64_t i) const {
    return elements_offset_ + static_cast<int>(i) * element_size();
  }
  int elements_offset() const { return elements_offset_; }
  // Total byte size of an array object with `length` elements.
  int64_t ArraySize(int64_t length) const {
    int64_t raw = elements_offset_ + length * element_size();
    return (raw + kHeapAlignment - 1) & ~static_cast<int64_t>(kHeapAlignment - 1);
  }

 private:
  friend class KlassRegistry;
  Klass() = default;

  uint32_t id_ = 0;
  std::string name_;
  bool is_array_ = false;
  std::vector<FieldInfo> fields_;
  std::vector<int> ref_offsets_;
  int instance_size_ = kObjectHeaderBytes;
  FieldKind element_kind_ = FieldKind::kI32;
  const Klass* element_klass_ = nullptr;
  int elements_offset_ = 0;
};

// Owns all Klass instances for one simulated "class loader". Layout is
// computed at definition time: fields are packed largest-first (as HotSpot
// does) with natural alignment, starting right after the header.
class KlassRegistry {
 public:
  KlassRegistry();
  ~KlassRegistry();
  KlassRegistry(const KlassRegistry&) = delete;
  KlassRegistry& operator=(const KlassRegistry&) = delete;

  // Defines an instance class. `fields` offsets are computed here.
  const Klass* DefineClass(const std::string& name, std::vector<FieldInfo> fields);

  // Defines (or returns the existing) array class with the given element
  // type. For kRef elements pass the element class; name becomes "Elem[]".
  const Klass* DefineArray(FieldKind element_kind, const Klass* element_klass = nullptr);

  const Klass* Find(const std::string& name) const;
  const Klass* ById(uint32_t id) const;
  size_t size() const { return klasses_.size(); }

 private:
  std::vector<std::unique_ptr<Klass>> klasses_;
  std::unordered_map<std::string, Klass*> by_name_;
};

}  // namespace gerenuk

#endif  // SRC_RUNTIME_KLASS_H_
