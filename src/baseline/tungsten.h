// A Tungsten/DataFrame-like baseline (§4.3): flat rows stored in native
// memory, operated on by generated ("compiled") code.
//
// Faithfully to the paper's characterization:
//   * Only *flat* schemas are supported — fixed-width i64/f64 columns plus
//     dictionary-pooled strings. Nested user types (DenseVector & friends)
//     cannot be expressed, which is exactly why only PageRank and WordCount
//     of the paper's suite can run on it.
//   * Row operations are direct C++ loops (the analogue of Tungsten's
//     whole-stage codegen), including cached string hashes — the string
//     optimizations that let Tungsten beat Gerenuk by ~20% on WordCount.
//   * Iterative use suffers the DataFrame plan-growth problem
//     (SPARK-13346): a query plan is re-derived and the working table is
//     re-materialized on every iteration, so iteration i pays for the full
//     lineage up to i. RunIterative models this; it is what makes
//     Gerenuk-transformed PageRank ~2x faster despite Tungsten's cheaper
//     per-row work.
#ifndef SRC_BASELINE_TUNGSTEN_H_
#define SRC_BASELINE_TUNGSTEN_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/support/logging.h"
#include "src/support/metrics.h"

namespace gerenuk {

enum class TungstenType : uint8_t { kI64, kF64, kString };

// Dictionary-encoded string pool with cached hashes (Tungsten's UTF8String
// tricks condensed to their performance essence).
class StringPool {
 public:
  // Returns a stable id for `text`, interning it on first sight.
  int64_t Intern(std::string_view text);
  std::string_view Get(int64_t id) const;
  uint64_t CachedHash(int64_t id) const { return hashes_[static_cast<size_t>(id)]; }
  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::vector<uint64_t> hashes_;
  std::unordered_map<std::string, int64_t, std::hash<std::string>> index_;
};

// A table of fixed-width rows: one 8-byte word per column (f64 bit-cast,
// strings as pool ids).
class TungstenTable {
 public:
  TungstenTable(std::vector<TungstenType> schema, MemoryTracker* tracker = nullptr);
  ~TungstenTable();
  TungstenTable(TungstenTable&&) noexcept = default;
  TungstenTable& operator=(TungstenTable&&) noexcept = default;

  int64_t num_rows() const { return num_rows_; }
  int num_cols() const { return static_cast<int>(schema_.size()); }
  const std::vector<TungstenType>& schema() const { return schema_; }

  void AppendRow(const int64_t* words);
  int64_t GetI64(int64_t row, int col) const { return words_[Index(row, col)]; }
  double GetF64(int64_t row, int col) const {
    double d;
    int64_t w = words_[Index(row, col)];
    std::memcpy(&d, &w, sizeof(d));
    return d;
  }
  void SetF64(int64_t row, int col, double v) {
    int64_t w;
    std::memcpy(&w, &v, sizeof(w));
    words_[Index(row, col)] = w;
  }
  static int64_t PackF64(double v) {
    int64_t w;
    std::memcpy(&w, &v, sizeof(w));
    return w;
  }

  int64_t bytes_used() const { return static_cast<int64_t>(words_.size() * sizeof(int64_t)); }

 private:
  size_t Index(int64_t row, int col) const {
    GERENUK_CHECK(row >= 0 && row < num_rows_);
    return static_cast<size_t>(row) * schema_.size() + static_cast<size_t>(col);
  }

  std::vector<TungstenType> schema_;
  std::vector<int64_t> words_;
  int64_t num_rows_ = 0;
  MemoryTracker* tracker_ = nullptr;
  int64_t tracked_ = 0;
};

// Hash aggregation: sums `value_col` grouped by `key_col` (string keys use
// the pool's cached hashes). Returns a (key, sum) table.
TungstenTable GroupBySumF64(const TungstenTable& input, int key_col, int value_col,
                            const StringPool* pool, MemoryTracker* tracker);
TungstenTable GroupBySumI64(const TungstenTable& input, int key_col, int value_col,
                            const StringPool* pool, MemoryTracker* tracker);

// Runs `iterations` rounds of `step` over a working table, modeling the
// DataFrame plan-growth pathology: before iteration i the engine re-derives
// and re-executes the lineage of the working table (i - 1 prior steps) as a
// query-plan re-evaluation, because iterative RDD-style caching is not
// available to DataFrames. `replay_step` must recompute one lineage step
// (typically the same work as `step` without side effects).
void RunIterativeWithPlanGrowth(int iterations, const std::function<void(int)>& step,
                                const std::function<void(int)>& replay_step);

}  // namespace gerenuk

#endif  // SRC_BASELINE_TUNGSTEN_H_
