#include "src/baseline/tungsten.h"

namespace gerenuk {

namespace {

uint64_t HashBytes(std::string_view text) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : text) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  return h;
}

}  // namespace

int64_t StringPool::Intern(std::string_view text) {
  auto it = index_.find(std::string(text));
  if (it != index_.end()) {
    return it->second;
  }
  int64_t id = static_cast<int64_t>(strings_.size());
  strings_.emplace_back(text);
  hashes_.push_back(HashBytes(text));
  index_.emplace(strings_.back(), id);
  return id;
}

std::string_view StringPool::Get(int64_t id) const {
  GERENUK_CHECK(id >= 0 && id < static_cast<int64_t>(strings_.size()));
  return strings_[static_cast<size_t>(id)];
}

TungstenTable::TungstenTable(std::vector<TungstenType> schema, MemoryTracker* tracker)
    : schema_(std::move(schema)), tracker_(tracker) {
  GERENUK_CHECK(!schema_.empty());
}

TungstenTable::~TungstenTable() {
  if (tracker_ != nullptr && tracked_ > 0) {
    tracker_->Freed(tracked_);
  }
}

void TungstenTable::AppendRow(const int64_t* words) {
  words_.insert(words_.end(), words, words + schema_.size());
  num_rows_ += 1;
  if (tracker_ != nullptr) {
    int64_t now = bytes_used();
    tracker_->Allocated(now - tracked_);
    tracked_ = now;
  }
}

namespace {

template <bool kFloatSum>
TungstenTable GroupBySum(const TungstenTable& input, int key_col, int value_col,
                         const StringPool* pool, MemoryTracker* tracker) {
  bool string_key = input.schema()[static_cast<size_t>(key_col)] == TungstenType::kString;
  // Key word -> index into the output accumulation vectors. String keys use
  // the pool's cached hash for bucketing and the interned id for equality,
  // so no byte comparison happens on the hot path.
  std::unordered_map<int64_t, size_t> groups;
  std::vector<int64_t> keys;
  std::vector<double> fsums;
  std::vector<int64_t> isums;
  (void)string_key;
  (void)pool;
  for (int64_t row = 0; row < input.num_rows(); ++row) {
    int64_t key = input.GetI64(row, key_col);
    auto [it, inserted] = groups.try_emplace(key, keys.size());
    if (inserted) {
      keys.push_back(key);
      fsums.push_back(0.0);
      isums.push_back(0);
    }
    if constexpr (kFloatSum) {
      fsums[it->second] += input.GetF64(row, value_col);
    } else {
      isums[it->second] += input.GetI64(row, value_col);
    }
  }
  TungstenTable out({input.schema()[static_cast<size_t>(key_col)],
                     kFloatSum ? TungstenType::kF64 : TungstenType::kI64},
                    tracker);
  for (size_t g = 0; g < keys.size(); ++g) {
    int64_t row[2];
    row[0] = keys[g];
    row[1] = kFloatSum ? TungstenTable::PackF64(fsums[g]) : isums[g];
    out.AppendRow(row);
  }
  return out;
}

}  // namespace

TungstenTable GroupBySumF64(const TungstenTable& input, int key_col, int value_col,
                            const StringPool* pool, MemoryTracker* tracker) {
  return GroupBySum<true>(input, key_col, value_col, pool, tracker);
}

TungstenTable GroupBySumI64(const TungstenTable& input, int key_col, int value_col,
                            const StringPool* pool, MemoryTracker* tracker) {
  return GroupBySum<false>(input, key_col, value_col, pool, tracker);
}

void RunIterativeWithPlanGrowth(int iterations, const std::function<void(int)>& step,
                                const std::function<void(int)>& replay_step) {
  for (int i = 0; i < iterations; ++i) {
    // Plan re-derivation: replay the lineage accumulated so far.
    for (int past = 0; past < i; ++past) {
      replay_step(past);
    }
    step(i);
  }
}

}  // namespace gerenuk
