#include "src/analysis/ser_analyzer.h"

#include <sstream>

namespace gerenuk {

const std::unordered_set<std::string>& NativeIntrinsics() {
  // The paper names clone, hashcode, toString and arrayCopy, plus the
  // specialized string operations provided for the char-array treatment of
  // strings (§3.3 "Special Cases").
  static const std::unordered_set<std::string>* intrinsics =
      new std::unordered_set<std::string>{
          "clone",      "hashCode",     "toString",     "arrayCopy",
          "stringHash", "stringEquals", "stringLength", "stringCompare",
      };
  return *intrinsics;
}

bool SerAnalyzer::Join(Taint& into, Taint from) {
  // kNone < kLower, kTop; kTop joins with kLower to kLower (an object seen
  // as both top and nested must be treated as nested for escape checks).
  if (from == Taint::kNone || into == from) {
    return false;
  }
  if (into == Taint::kNone) {
    into = from;
    return true;
  }
  if (into == Taint::kTop && from == Taint::kLower) {
    into = Taint::kLower;
    return true;
  }
  return false;
}

SerAnalysis SerAnalyzer::Run() {
  SerAnalysis analysis;
  analysis.functions.resize(program_.functions.size());
  for (size_t f = 0; f < program_.functions.size(); ++f) {
    const Function& func = *program_.functions[f];
    analysis.functions[f].taint.assign(func.vars.size(), Taint::kNone);
    analysis.functions[f].fresh.assign(func.vars.size(), false);
    analysis.functions[f].sink_reaching.assign(func.vars.size(), false);
  }

  // Seed: deserialization points, plus parameters whose declared class is in
  // a data hierarchy (records handed in by the engine are deserialized data).
  for (size_t f = 0; f < program_.functions.size(); ++f) {
    const Function& func = *program_.functions[f];
    FunctionTaint& facts = analysis.functions[f];
    for (int p = 0; p < func.num_params; ++p) {
      const IrType& type = func.vars[p].type;
      if (type.IsRef() && type.klass != nullptr && layouts_.Contains(type.klass)) {
        const Klass* record = type.klass->is_array() && type.klass->element_kind() == FieldKind::kRef
                                  ? type.klass->element_klass()
                                  : type.klass;
        facts.taint[p] = layouts_.IsTopLevel(record) || layouts_.IsTopLevel(type.klass)
                             ? Taint::kTop
                             : Taint::kLower;
      }
    }
  }

  while (Propagate(analysis)) {
  }
  while (PropagateBackward(analysis)) {
  }
  CollectViolationsAndStatements(analysis);

  for (const FunctionTaint& facts : analysis.functions) {
    for (Taint t : facts.taint) {
      if (t != Taint::kNone) {
        analysis.tainted_variables += 1;
      }
    }
  }
  return analysis;
}

bool SerAnalyzer::Propagate(SerAnalysis& analysis) {
  bool changed = false;
  for (size_t f = 0; f < program_.functions.size(); ++f) {
    const Function& func = *program_.functions[f];
    FunctionTaint& facts = analysis.functions[f];
    auto taint_of = [&facts](int var) {
      return var < 0 ? Taint::kNone : facts.taint[var];
    };
    auto set_fresh = [&facts, &changed](int var, bool fresh) {
      if (var >= 0 && facts.fresh[var] != fresh && fresh) {
        facts.fresh[var] = true;
        changed = true;
      }
    };
    for (const Statement& s : func.body) {
      switch (s.op) {
        case Op::kDeserialize:
          // Source: v = readObject() yields a top-level record.
          if (s.klass != nullptr && layouts_.Contains(s.klass)) {
            changed |= Join(facts.taint[s.dst], Taint::kTop);
          }
          break;
        case Op::kAssign:
          changed |= Join(facts.taint[s.dst], taint_of(s.a));
          set_fresh(s.dst, s.a >= 0 && facts.fresh[s.a]);
          break;
        case Op::kFieldLoad: {
          // a tainted => the object read out of a.f is part of the same
          // data structure (the paper's o.f rule).
          const FieldInfo& field = s.klass->field(s.field_index);
          if (field.kind == FieldKind::kRef && taint_of(s.a) != Taint::kNone) {
            changed |= Join(facts.taint[s.dst], Taint::kLower);
            // Loading out of a fresh (under-construction) record keeps the
            // freshness: its sub-records are also under construction.
            set_fresh(s.dst, facts.fresh[s.a]);
          }
          break;
        }
        case Op::kArrayLoad:
          if (s.elem_kind == FieldKind::kRef && taint_of(s.a) != Taint::kNone) {
            // An element of a data-collection array is a record; an element
            // of a nested data array is a lower-level object.
            const Klass* elem = s.klass->element_klass();
            Taint t = elem != nullptr && layouts_.IsTopLevel(elem) ? Taint::kTop : Taint::kLower;
            changed |= Join(facts.taint[s.dst], t);
            set_fresh(s.dst, facts.fresh[s.a]);
          }
          break;
        case Op::kNewObject:
        case Op::kNewArray:
          if (s.klass != nullptr && layouts_.Contains(s.klass)) {
            const Klass* record = s.klass->is_array() && s.klass->element_kind() == FieldKind::kRef
                                      ? s.klass->element_klass()
                                      : s.klass;
            Taint t = (record != nullptr && layouts_.IsTopLevel(record)) ||
                              layouts_.IsTopLevel(s.klass)
                          ? Taint::kTop
                          : Taint::kLower;
            changed |= Join(facts.taint[s.dst], t);
            set_fresh(s.dst, true);
          }
          break;
        case Op::kCall: {
          // Interprocedural: arguments flow into callee parameters; the
          // callee's returned variables flow into dst.
          const Function& callee = *program_.functions[s.func];
          FunctionTaint& callee_facts = analysis.functions[s.func];
          for (size_t i = 0; i < s.args.size(); ++i) {
            changed |= Join(callee_facts.taint[static_cast<int>(i)], taint_of(s.args[i]));
            if (facts.fresh[s.args[i]] && !callee_facts.fresh[i]) {
              callee_facts.fresh[i] = true;
              changed = true;
            }
          }
          if (s.dst >= 0) {
            for (const Statement& ret : callee.body) {
              if (ret.op == Op::kReturn && ret.a >= 0) {
                changed |= Join(facts.taint[s.dst], callee_facts.taint[ret.a]);
                set_fresh(s.dst, callee_facts.fresh[ret.a]);
              }
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }
  return changed;
}

bool SerAnalyzer::PropagateBackward(SerAnalysis& analysis) {
  // Sink-reachability: a variable reaches a sink if it is serialized,
  // returned from a function whose result reaches a sink at some call site,
  // or flows (forward) into a variable that reaches a sink. We iterate the
  // def-use edges backwards until fixpoint.
  bool changed = false;
  for (size_t f = 0; f < program_.functions.size(); ++f) {
    const Function& func = *program_.functions[f];
    FunctionTaint& facts = analysis.functions[f];
    auto mark = [&facts, &changed](int var) {
      if (var >= 0 && !facts.sink_reaching[var]) {
        facts.sink_reaching[var] = true;
        changed = true;
      }
    };
    for (const Statement& s : func.body) {
      switch (s.op) {
        case Op::kSerialize:
          mark(s.a);
          break;
        case Op::kReturn:
          // A returned record reaches the engine, which shuffles it onward —
          // the engine boundary is a sink for entry functions, and for
          // callees the call-site propagation below covers it.
          if (s.a >= 0 && facts.taint[s.a] != Taint::kNone) {
            mark(s.a);
          }
          break;
        case Op::kAssign:
          if (s.dst >= 0 && facts.sink_reaching[s.dst]) {
            mark(s.a);
          }
          break;
        case Op::kFieldLoad:
        case Op::kArrayLoad:
          if (s.dst >= 0 && facts.sink_reaching[s.dst]) {
            mark(s.a);
          }
          break;
        case Op::kFieldStore:
          // Building a record that reaches a sink pulls the stored value in.
          if (s.a >= 0 && facts.sink_reaching[s.a]) {
            mark(s.b);
          }
          break;
        case Op::kArrayStore:
          if (s.a >= 0 && facts.sink_reaching[s.a]) {
            mark(s.c);
          }
          break;
        case Op::kCall: {
          FunctionTaint& callee_facts = analysis.functions[s.func];
          const Function& callee = *program_.functions[s.func];
          // dst reaching a sink marks the callee's returns...
          if (s.dst >= 0 && facts.sink_reaching[s.dst]) {
            for (const Statement& ret : callee.body) {
              if (ret.op == Op::kReturn && ret.a >= 0 && !callee_facts.sink_reaching[ret.a]) {
                callee_facts.sink_reaching[ret.a] = true;
                changed = true;
              }
            }
          }
          // ...and sink-reaching callee params mark the arguments.
          for (size_t i = 0; i < s.args.size(); ++i) {
            if (callee_facts.sink_reaching[i]) {
              mark(s.args[i]);
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }
  return changed;
}

void SerAnalyzer::CollectViolationsAndStatements(SerAnalysis& analysis) {
  for (size_t f = 0; f < program_.functions.size(); ++f) {
    const Function& func = *program_.functions[f];
    const FunctionTaint& facts = analysis.functions[f];
    auto tainted = [&facts](int var) {
      return var >= 0 && facts.taint[var] != Taint::kNone;
    };
    for (size_t i = 0; i < func.body.size(); ++i) {
      const Statement& s = func.body[i];
      StmtRef ref{static_cast<int>(f), static_cast<int>(i)};
      bool on_data_path = false;
      switch (s.op) {
        case Op::kDeserialize:
          on_data_path = tainted(s.dst);
          break;
        case Op::kSerialize:
          on_data_path = tainted(s.a);
          break;
        case Op::kAssign:
          on_data_path = tainted(s.dst) && func.vars[s.dst].type.IsRef();
          break;
        case Op::kFieldLoad:
          on_data_path = tainted(s.a);
          break;
        case Op::kFieldStore: {
          const FieldInfo& field = s.klass->field(s.field_index);
          if (tainted(s.a)) {
            on_data_path = true;
            if (field.kind != FieldKind::kRef && !facts.fresh[s.a]) {
              // Immutability violation: a primitive field of an existing
              // (deserialized) record is overwritten. The inlined input
              // bytes must stay pristine for re-execution, so the write is
              // fenced (this is what fires on the §4.4 resize branch).
              analysis.violations.push_back(
                  {ref, AbortReason::kDisruptNativeSpace,
                   "primitive mutation of non-fresh data object " + s.klass->name() + "." +
                       field.name});
              on_data_path = false;
            } else if (field.kind == FieldKind::kRef) {
              if (!tainted(s.b)) {
                // Violation 2: a regular heap reference written into an
                // inlined data record.
                analysis.violations.push_back(
                    {ref, AbortReason::kDisruptNativeSpace,
                     "heap reference stored into data object " + s.klass->name() + "." +
                         field.name});
                on_data_path = false;
              } else if (!facts.fresh[s.a]) {
                // Violation 2 (immutability): a reference field of an
                // existing (deserialized) record is being replaced — the
                // §4.4 Vector.resize pattern.
                analysis.violations.push_back(
                    {ref, AbortReason::kDisruptNativeSpace,
                     "reference mutation of non-fresh data object " + s.klass->name() + "." +
                         field.name});
                on_data_path = false;
              }
            }
          } else if (field.kind == FieldKind::kRef && tainted(s.b) &&
                     facts.taint[s.b] == Taint::kLower) {
            // Violation 1: a lower-level data object escapes into a plain
            // heap object.
            analysis.violations.push_back(
                {ref, AbortReason::kLoadAndEscape,
                 "data object escapes into heap object via " + s.klass->name() + "." +
                     field.name});
          }
          break;
        }
        case Op::kArrayLoad:
          on_data_path = tainted(s.a);
          break;
        case Op::kArrayStore:
          if (tainted(s.a)) {
            on_data_path = true;
            if (s.elem_kind != FieldKind::kRef && !facts.fresh[s.a]) {
              analysis.violations.push_back({ref, AbortReason::kDisruptNativeSpace,
                                             "primitive mutation of non-fresh data array"});
              on_data_path = false;
            } else if (s.elem_kind == FieldKind::kRef) {
              if (!tainted(s.c)) {
                analysis.violations.push_back({ref, AbortReason::kDisruptNativeSpace,
                                               "heap reference stored into data array"});
                on_data_path = false;
              } else if (!facts.fresh[s.a]) {
                analysis.violations.push_back({ref, AbortReason::kDisruptNativeSpace,
                                               "element mutation of non-fresh data array"});
                on_data_path = false;
              }
            }
          } else if (s.elem_kind == FieldKind::kRef && tainted(s.c) &&
                     facts.taint[s.c] == Taint::kLower) {
            analysis.violations.push_back({ref, AbortReason::kLoadAndEscape,
                                           "lower-level data object escapes into heap array"});
          }
          break;
        case Op::kArrayLength:
          on_data_path = tainted(s.a);
          break;
        case Op::kNewObject:
        case Op::kNewArray:
          on_data_path = tainted(s.dst);
          break;
        case Op::kCallNative: {
          bool any_data_arg = false;
          for (int arg : s.args) {
            any_data_arg |= tainted(arg);
          }
          if (any_data_arg) {
            if (NativeIntrinsics().count(s.native_name) > 0) {
              on_data_path = true;  // customized implementation exists
            } else {
              // Violation 3: a native method may create external side
              // effects.
              analysis.violations.push_back({ref, AbortReason::kInvokeNativeMethod,
                                             "native method " + s.native_name +
                                                 " invoked on data object"});
            }
          }
          break;
        }
        case Op::kMonitorEnter:
        case Op::kMonitorExit:
          if (tainted(s.a)) {
            // Violation 4: the object's metadata (its lock) is used.
            analysis.violations.push_back({ref, AbortReason::kUseObjectMetainfo,
                                           "monitor taken on data object"});
          }
          break;
        default:
          break;
      }
      if (on_data_path) {
        analysis.data_statements.insert(ref);
        // §3.2's sink-based pruning: record-producing flows that provably
        // never reach a serialization sink. Reads must stay transformed
        // either way (an untransformed heap load would fault on the native
        // path), so pruning is reported as a statistic on producers — the
        // dead flow costs only unused builder space at run time.
        if ((s.op == Op::kNewObject || s.op == Op::kNewArray) && s.dst >= 0 &&
            !facts.sink_reaching[s.dst]) {
          analysis.pruned.insert(ref);
        }
      }
    }
  }
}

}  // namespace gerenuk
