// The SER code analyzer (§3.2): a taint analysis that traces the flow of
// data objects from deserialization points (sources) to serialization points
// (sinks) and classifies every statement as data-path (to be transformed),
// control-path (left as-is), or a violation point (abort inserted).
//
// Simplifications relative to the paper, documented in DESIGN.md: the
// analysis is flow-insensitive within a function (a fixpoint over all
// statements) and context-insensitive across calls, where the paper uses a
// context- and path-sensitive analysis over Soot's IR. Because our IR
// variables are near-SSA (the builder creates a fresh variable per value)
// the precision loss is small, and any loss only adds conservative aborts —
// never unsoundness.
//
// Taint lattice per variable:
//   kNone  — not a data object
//   kTop   — a top-level data record (the user-annotated type T)
//   kLower — an object belonging to a data structure rooted at some T
// plus a "fresh" bit: the value originates from an allocation inside the SER
// (a record under construction) rather than from deserialized input. The
// fresh bit is what lets construction writes (new LabeledPoint's fields
// being filled in) compile to native construction while mutation of input
// records (the §4.4 Vector.resize) becomes a violation.
#ifndef SRC_ANALYSIS_SER_ANALYZER_H_
#define SRC_ANALYSIS_SER_ANALYZER_H_

#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/analysis/layout.h"
#include "src/ir/ir.h"

namespace gerenuk {

enum class Taint : uint8_t { kNone = 0, kTop = 1, kLower = 2 };

// A (function, statement) coordinate.
struct StmtRef {
  int func = -1;
  int index = -1;
  bool operator<(const StmtRef& other) const {
    return func != other.func ? func < other.func : index < other.index;
  }
  bool operator==(const StmtRef& other) const {
    return func == other.func && index == other.index;
  }
};

struct Violation {
  StmtRef where;
  AbortReason reason = AbortReason::kLoadAndEscape;
  std::string detail;
};

// Per-function taint facts.
struct FunctionTaint {
  std::vector<Taint> taint;        // per variable
  std::vector<bool> fresh;         // per variable: allocated inside the SER
  std::vector<bool> sink_reaching; // per variable: flows to a serialization sink
};

struct SerAnalysis {
  std::vector<FunctionTaint> functions;      // indexed by function id
  std::set<StmtRef> data_statements;         // statements to transform
  std::vector<Violation> violations;         // abort insertion points
  std::set<StmtRef> pruned;                  // tainted but not sink-reaching
  int tainted_variables = 0;

  Taint TaintOf(int func, int var) const {
    return var < 0 ? Taint::kNone : functions[func].taint[var];
  }
  bool IsData(int func, int var) const { return TaintOf(func, var) != Taint::kNone; }
  bool IsFresh(int func, int var) const {
    return var >= 0 && functions[func].fresh[var];
  }
};

// Names of native methods for which Gerenuk provides customized
// implementations that work on inlined bytes (§3.4 violation 3). Calls to
// these do not abort; anything else native does.
const std::unordered_set<std::string>& NativeIntrinsics();

class SerAnalyzer {
 public:
  // `layouts` must already contain every user-annotated top-level type
  // (§3.1's second annotation).
  SerAnalyzer(const SerProgram& program, const DataStructAnalyzer& layouts)
      : program_(program), layouts_(layouts) {}

  SerAnalysis Run();

 private:
  bool Propagate(SerAnalysis& analysis);
  bool PropagateBackward(SerAnalysis& analysis);
  void CollectViolationsAndStatements(SerAnalysis& analysis);
  static bool Join(Taint& into, Taint from);

  const SerProgram& program_;
  const DataStructAnalyzer& layouts_;
};

}  // namespace gerenuk

#endif  // SRC_ANALYSIS_SER_ANALYZER_H_
