// The data structure analyzer (§3.3): given a user-specified top-level data
// type T, explore every class referenced directly or transitively by T and
// map each field to its offset inside the inlined native representation.
//
// Offsets are SizeExprs — affine expressions over array lengths that are
// read from the record itself at run time:
//
//     offset = constant + sum_i (scale_i * lengthAt(offset_expr_i))
//
// matching the paper's example where field c of
//     class C { int a; long[] b; double c; }
// has offset 4 + 4 + 8 * readNative(BASE_C, 4, 4). Fixed-size classes get
// pure-constant offsets, which the transformer turns into the fast
// statically-known form of Algorithm 1.
//
// All offsets are relative to the start of the *containing class's* record
// body (the paper's BASE_C): when class D is inlined into class C at offset
// O, D-relative expressions are shifted by O on the way back up the DFS —
// the paper's "BASE_C is replaced with an expression containing BASE_C'".
#ifndef SRC_ANALYSIS_LAYOUT_H_
#define SRC_ANALYSIS_LAYOUT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/runtime/klass.h"

namespace gerenuk {

// An affine expression over in-record array lengths. Each term's length
// location is itself an expression (arrays behind arrays nest), so terms
// reference other pool entries.
struct SizeExpr {
  int64_t constant = 0;
  struct Term {
    int64_t scale = 0;
    int length_at = -1;  // ExprPool id of the expression locating the i32 length
  };
  std::vector<Term> terms;

  bool IsConstant() const { return terms.empty(); }
};

// Owns all SizeExprs produced by the analyzer; statements reference them by
// id (Statement::expr_id).
class ExprPool {
 public:
  int Add(SizeExpr expr) {
    exprs_.push_back(std::move(expr));
    return static_cast<int>(exprs_.size()) - 1;
  }
  const SizeExpr& Get(int id) const {
    GERENUK_CHECK(id >= 0 && id < static_cast<int>(exprs_.size()));
    return exprs_[static_cast<size_t>(id)];
  }
  int AddConstant(int64_t value) {
    SizeExpr e;
    e.constant = value;
    return Add(e);
  }
  size_t size() const { return exprs_.size(); }

  // Evaluates `id` against a record at `base`, reading array lengths through
  // `read_i32(base + offset)`. This is the runtime's resolveOffset.
  int64_t Eval(int id, const std::function<int32_t(int64_t)>& read_i32) const;

  // One-time constant-folding pass: marks every expression whose value does
  // not depend on record bytes (no terms, or only zero-scale terms) so
  // ResolveOffset and the plan compiler can skip the tree walk. Idempotent;
  // re-run it after the pool grows (analyzing a new top-level type adds
  // expressions). Eval() stays unfolded — it is the reference evaluator the
  // agreement test compares against.
  void FoldConstants();

  // True when FoldConstants() proved `id` reduces to a compile-time
  // constant; `*value` receives it. Ids added after the last fold pass
  // report false (conservative, never wrong).
  bool FoldedConstant(int id, int64_t* value) const {
    if (id < 0 || id >= static_cast<int>(folded_.size()) || !folded_[static_cast<size_t>(id)].is_const) {
      return false;
    }
    *value = folded_[static_cast<size_t>(id)].value;
    return true;
  }

  std::string ToString(int id) const;

 private:
  struct Folded {
    bool is_const = false;
    int64_t value = 0;
  };

  std::vector<SizeExpr> exprs_;
  std::vector<Folded> folded_;
};

// Where one declared field's data lives inside its containing record body.
struct FieldSlot {
  int offset_expr = -1;     // ExprPool id, relative to the record body start
  bool is_constant = false; // true when offset_expr is a plain constant
  int64_t const_offset = 0; // valid when is_constant
};

// The inline layout of one class in a top-level type's hierarchy.
struct ClassLayout {
  const Klass* klass = nullptr;
  std::vector<FieldSlot> fields;  // parallel to klass->fields()
  int size_expr = -1;             // total body size (ExprPool id)
  bool fixed_size = false;
  int64_t const_size = 0;         // valid when fixed_size
};

// Runs the DFS and caches per-class layouts. One analyzer serves all
// top-level types of a program (their hierarchies may share classes).
class DataStructAnalyzer {
 public:
  explicit DataStructAnalyzer(ExprPool& pool) : pool_(pool) {}

  // Analyzes the hierarchy rooted at `top` (a class or an array type).
  // Returns false (with *error set) when the shape is not a tree — e.g. a
  // recursive type — which the paper's analyzer rejects.
  bool AnalyzeTopLevel(const Klass* top, std::string* error);

  // True when `klass` belongs to any analyzed hierarchy (including array
  // types encountered inside records and top-level collection arrays).
  bool Contains(const Klass* klass) const { return layouts_.count(klass) > 0 || arrays_.count(klass) > 0; }
  bool IsTopLevel(const Klass* klass) const { return tops_.count(klass) > 0; }

  const ClassLayout* LayoutOf(const Klass* klass) const {
    auto it = layouts_.find(klass);
    return it == layouts_.end() ? nullptr : &it->second;
  }

  const std::vector<const Klass*>& top_types() const { return top_list_; }

  // The paper's "schema file": a textual dump of the analyzed structure with
  // every offset expression, written next to DESIGN.md's per-type tables.
  std::string SchemaToString(const Klass* top) const;

  ExprPool& pool() { return pool_; }
  const ExprPool& pool() const { return pool_; }

 private:
  // Returns the layout (computing it if needed); fails on recursive shapes.
  const ClassLayout* AnalyzeClass(const Klass* klass, std::string* error);

  ExprPool& pool_;
  std::unordered_map<const Klass*, ClassLayout> layouts_;
  std::unordered_set<const Klass*> arrays_;  // array types in the hierarchy
  std::unordered_set<const Klass*> tops_;
  std::vector<const Klass*> top_list_;
  std::unordered_set<const Klass*> in_progress_;  // DFS cycle detection
};

}  // namespace gerenuk

#endif  // SRC_ANALYSIS_LAYOUT_H_
