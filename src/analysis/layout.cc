#include "src/analysis/layout.h"

#include <sstream>

namespace gerenuk {

int64_t ExprPool::Eval(int id, const std::function<int32_t(int64_t)>& read_i32) const {
  const SizeExpr& expr = Get(id);
  int64_t result = expr.constant;
  for (const SizeExpr::Term& term : expr.terms) {
    int64_t length_offset = Eval(term.length_at, read_i32);
    result += term.scale * static_cast<int64_t>(read_i32(length_offset));
  }
  return result;
}

void ExprPool::FoldConstants() {
  folded_.resize(exprs_.size());
  for (size_t id = 0; id < exprs_.size(); ++id) {
    const SizeExpr& expr = exprs_[id];
    bool is_const = true;
    for (const SizeExpr::Term& term : expr.terms) {
      if (term.scale != 0) {
        is_const = false;
        break;
      }
    }
    folded_[id] = Folded{is_const, expr.constant};
  }
}

std::string ExprPool::ToString(int id) const {
  const SizeExpr& expr = Get(id);
  std::ostringstream out;
  out << expr.constant;
  for (const SizeExpr::Term& term : expr.terms) {
    out << " + " << term.scale << "*len@(" << ToString(term.length_at) << ")";
  }
  return out.str();
}

namespace {

// Re-bases `expr_id` (relative to an inner record) onto `base_id` (the inner
// record's offset within the outer record): result = base + expr, with every
// array-length location inside `expr` re-based recursively. This is the
// paper's substitution of BASE_C with an expression over BASE_C'.
int ShiftExpr(ExprPool& pool, int expr_id, int base_id) {
  // Copy both expressions up front: recursive Add calls may reallocate the
  // pool's storage and invalidate references into it.
  const SizeExpr base = pool.Get(base_id);
  const SizeExpr inner = pool.Get(expr_id);
  SizeExpr result;
  result.constant = base.constant + inner.constant;
  result.terms = base.terms;
  for (const SizeExpr::Term& term : inner.terms) {
    result.terms.push_back({term.scale, ShiftExpr(pool, term.length_at, base_id)});
  }
  return pool.Add(std::move(result));
}

}  // namespace

bool DataStructAnalyzer::AnalyzeTopLevel(const Klass* top, std::string* error) {
  const Klass* record_class = top;
  if (top->is_array()) {
    arrays_.insert(top);
    if (top->element_kind() != FieldKind::kRef) {
      // A primitive-array top-level type (e.g. double[]) needs no class map.
      tops_.insert(top);
      top_list_.push_back(top);
      return true;
    }
    record_class = top->element_klass();
  }
  if (AnalyzeClass(record_class, error) == nullptr) {
    return false;
  }
  if (tops_.insert(record_class).second) {
    top_list_.push_back(record_class);
  }
  return true;
}

const ClassLayout* DataStructAnalyzer::AnalyzeClass(const Klass* klass, std::string* error) {
  GERENUK_CHECK(!klass->is_array());
  auto cached = layouts_.find(klass);
  if (cached != layouts_.end()) {
    return &cached->second;
  }
  if (in_progress_.count(klass) > 0) {
    *error = "recursive data structure at class " + klass->name() +
             ": shape is not a tree and cannot be represented without pointers";
    return nullptr;
  }
  in_progress_.insert(klass);

  ClassLayout layout;
  layout.klass = klass;
  // Running offset of the next field, relative to this record's body start.
  SizeExpr offset;
  bool open_ended = false;  // true once a field of statically unknown total
                            // size has been laid out (must be the last field)

  for (const FieldInfo& field : klass->fields()) {
    if (open_ended) {
      *error = "class " + klass->name() + ": field '" + field.name +
               "' follows a variable-record array; only tail position is supported";
      in_progress_.erase(klass);
      return nullptr;
    }
    FieldSlot slot;
    slot.offset_expr = pool_.Add(offset);
    slot.is_constant = offset.IsConstant();
    slot.const_offset = offset.constant;
    layout.fields.push_back(slot);

    if (field.kind != FieldKind::kRef) {
      offset.constant += FieldKindSize(field.kind);
      continue;
    }
    const Klass* target = field.target;
    GERENUK_CHECK(target != nullptr) << klass->name() << "." << field.name;
    if (target->is_array()) {
      arrays_.insert(target);
      // Inline array: [length:i32][elements]. The element region's size is
      // elem_size * length, with length read at this field's own offset.
      if (target->element_kind() != FieldKind::kRef) {
        offset.constant += 4;
        offset.terms.push_back({target->element_size(), slot.offset_expr});
      } else {
        const ClassLayout* elem = AnalyzeClass(target->element_klass(), error);
        if (elem == nullptr) {
          in_progress_.erase(klass);
          return nullptr;
        }
        if (elem->fixed_size) {
          offset.constant += 4;
          offset.terms.push_back({elem->const_size, slot.offset_expr});
        } else {
          // Variable-size record elements (each stored with a size prefix):
          // the total extent is not an affine expression, so nothing may
          // follow this field.
          open_ended = true;
        }
      }
      continue;
    }
    // Inline class record.
    const ClassLayout* sub = AnalyzeClass(target, error);
    if (sub == nullptr) {
      in_progress_.erase(klass);
      return nullptr;
    }
    if (sub->size_expr < 0) {
      open_ended = true;  // open-ended child: nothing may follow
      continue;
    }
    if (sub->fixed_size) {
      offset.constant += sub->const_size;
    } else {
      // offset' = offset + size(sub) re-based at this field's slot.
      int shifted = ShiftExpr(pool_, sub->size_expr, slot.offset_expr);
      const SizeExpr& total = pool_.Get(shifted);
      offset = total;
    }
  }

  if (open_ended) {
    layout.size_expr = -1;
    layout.fixed_size = false;
    layout.const_size = 0;
  } else {
    layout.size_expr = pool_.Add(offset);
    layout.fixed_size = offset.IsConstant();
    layout.const_size = offset.constant;
  }

  in_progress_.erase(klass);
  auto [it, inserted] = layouts_.emplace(klass, std::move(layout));
  GERENUK_CHECK(inserted);
  return &it->second;
}

std::string DataStructAnalyzer::SchemaToString(const Klass* top) const {
  std::ostringstream out;
  const Klass* record_class = top->is_array() ? top->element_klass() : top;
  std::vector<const Klass*> pending = {record_class};
  std::unordered_set<const Klass*> seen;
  while (!pending.empty()) {
    const Klass* klass = pending.back();
    pending.pop_back();
    if (klass == nullptr || !seen.insert(klass).second) {
      continue;
    }
    const ClassLayout* layout = LayoutOf(klass);
    if (layout == nullptr) {
      continue;
    }
    out << "class " << klass->name() << " {";
    if (layout->size_expr >= 0) {
      out << " // size = " << pool_.ToString(layout->size_expr) << "\n";
    } else {
      out << " // size = <open-ended>\n";
    }
    for (size_t i = 0; i < klass->fields().size(); ++i) {
      const FieldInfo& field = klass->field(static_cast<int>(i));
      out << "  " << FieldKindName(field.kind) << " " << field.name << " @ "
          << pool_.ToString(layout->fields[i].offset_expr) << "\n";
      if (field.kind == FieldKind::kRef && field.target != nullptr) {
        const Klass* next = field.target->is_array() ? field.target->element_klass()
                                                     : field.target;
        if (next != nullptr) {
          pending.push_back(next);
        }
      }
    }
    out << "}\n";
  }
  return out.str();
}

}  // namespace gerenuk
