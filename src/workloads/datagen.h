// Synthetic data generators standing in for the paper's datasets (the
// LiveJournal/Orkut/UK-2005/Twitter graphs and the StackOverflow/Wikipedia
// dumps we don't have). Each generator matches the statistical shape that
// drives the measured ratios: power-law degree skew for graphs, Gaussian
// clusters for KMeans, separable labeled points for LR/CS/GB, Zipfian
// vocabulary for text, and long-tailed per-user post counts for the
// StackOverflow-style workloads.
#ifndef SRC_WORKLOADS_DATAGEN_H_
#define SRC_WORKLOADS_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/rng.h"

namespace gerenuk {

// Directed graph with Zipf-skewed destination popularity (preferential
// attachment flavor). Every vertex has >= 1 outgoing edge.
struct SyntheticGraph {
  int64_t num_vertices = 0;
  std::vector<std::vector<int64_t>> out_edges;  // adjacency (by source)
  int64_t num_edges() const;
};
SyntheticGraph MakePowerLawGraph(int64_t vertices, int64_t edges, uint64_t seed);

// Points drawn from k Gaussian clusters in `dim` dimensions.
struct SyntheticPoints {
  int dim = 0;
  std::vector<std::vector<double>> values;  // one vector per point
  std::vector<int> true_cluster;
};
SyntheticPoints MakeClusteredPoints(int64_t count, int dim, int clusters, uint64_t seed);

// Binary-labeled points from two separable Gaussians (for LR/CS/GB).
struct SyntheticLabeledPoints {
  int dim = 0;
  std::vector<std::vector<double>> features;
  std::vector<double> labels;  // 0.0 or 1.0
};
SyntheticLabeledPoints MakeLabeledPoints(int64_t count, int dim, uint64_t seed);

// StackOverflow-like posts: long-tailed per-user activity, topic tags,
// scores, and short Zipfian text bodies.
struct SyntheticPost {
  int64_t user_id = 0;
  int32_t topic = 0;
  int32_t score = 0;
  std::string text;
};
std::vector<SyntheticPost> MakePosts(int64_t count, int64_t users, int topics, uint64_t seed);

// Wikipedia-like text lines: `words_per_line` Zipf-distributed words.
std::vector<std::string> MakeTextLines(int64_t lines, int words_per_line, int vocabulary,
                                       uint64_t seed);

}  // namespace gerenuk

#endif  // SRC_WORKLOADS_DATAGEN_H_
