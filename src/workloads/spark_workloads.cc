#include "src/workloads/spark_workloads.h"

#include <cmath>

#include "src/ir/builder.h"

namespace gerenuk {

SparkWorkloads::SparkWorkloads(SparkEngine& engine) : engine_(engine) {
  DefineTypes();
  BuildUdfs();
}

void SparkWorkloads::DefineTypes() {
  KlassRegistry& reg = engine_.heap().klasses();
  const Klass* i64_array = reg.DefineArray(FieldKind::kI64);
  const Klass* f64_array = reg.DefineArray(FieldKind::kF64);
  const Klass* i32_array = reg.DefineArray(FieldKind::kI32);
  const Klass* string_k = engine_.wk().string_klass();

  vertex_links = reg.DefineClass("VertexLinks", {
                                                    {"id", FieldKind::kI64, nullptr, 0},
                                                    {"neighbors", FieldKind::kRef, i64_array, 0},
                                                });
  rank = reg.DefineClass("Rank", {
                                     {"id", FieldKind::kI64, nullptr, 0},
                                     {"rank", FieldKind::kF64, nullptr, 0},
                                 });
  vertex_state = reg.DefineClass("VertexState", {
                                                    {"id", FieldKind::kI64, nullptr, 0},
                                                    {"rank", FieldKind::kF64, nullptr, 0},
                                                    {"neighbors", FieldKind::kRef, i64_array, 0},
                                                });
  point = reg.DefineClass("Point", {
                                       {"numActives", FieldKind::kI32, nullptr, 0},
                                       {"values", FieldKind::kRef, f64_array, 0},
                                   });
  cluster_stat = reg.DefineClass("ClusterStat", {
                                                    {"cluster", FieldKind::kI64, nullptr, 0},
                                                    {"count", FieldKind::kI64, nullptr, 0},
                                                    {"sums", FieldKind::kRef, f64_array, 0},
                                                });
  centers = reg.DefineClass("Centers", {
                                           {"k", FieldKind::kI32, nullptr, 0},
                                           {"dim", FieldKind::kI32, nullptr, 0},
                                           {"data", FieldKind::kRef, f64_array, 0},
                                       });
  dense_vector = reg.DefineClass("DenseVector", {
                                                    {"numActives", FieldKind::kI32, nullptr, 0},
                                                    {"values", FieldKind::kRef, f64_array, 0},
                                                });
  labeled_point = reg.DefineClass("LabeledPoint",
                                  {
                                      {"label", FieldKind::kF64, nullptr, 0},
                                      {"features", FieldKind::kRef, dense_vector, 0},
                                  });
  sparse_vector = reg.DefineClass("SparseVector", {
                                                      {"numActives", FieldKind::kI32, nullptr, 0},
                                                      {"indices", FieldKind::kRef, i32_array, 0},
                                                      {"values", FieldKind::kRef, f64_array, 0},
                                                  });
  sparse_point = reg.DefineClass("SparseLabeledPoint",
                                 {
                                     {"label", FieldKind::kF64, nullptr, 0},
                                     {"features", FieldKind::kRef, sparse_vector, 0},
                                 });
  grad_vec = reg.DefineClass("GradVec", {
                                            {"key", FieldKind::kI64, nullptr, 0},
                                            {"values", FieldKind::kRef, f64_array, 0},
                                        });
  weights = reg.DefineClass("Weights", {
                                           {"dim", FieldKind::kI32, nullptr, 0},
                                           {"data", FieldKind::kRef, f64_array, 0},
                                       });
  feat_count = reg.DefineClass("FeatCount", {
                                                {"key", FieldKind::kI64, nullptr, 0},
                                                {"count", FieldKind::kI64, nullptr, 0},
                                            });
  line = reg.DefineClass("Line", {{"text", FieldKind::kRef, string_k, 0}});
  word_count = reg.DefineClass("WordCount", {
                                                {"word", FieldKind::kRef, string_k, 0},
                                                {"count", FieldKind::kI64, nullptr, 0},
                                            });
  account = reg.DefineClass("Account", {
                                           {"user", FieldKind::kI64, nullptr, 0},
                                           {"size", FieldKind::kI64, nullptr, 0},
                                           {"capacity", FieldKind::kI64, nullptr, 0},
                                           {"lengths", FieldKind::kRef, i64_array, 0},
                                       });

  for (const Klass* top : {vertex_links, rank, vertex_state, point, cluster_stat, centers,
                           labeled_point, sparse_point, grad_vec, weights, feat_count, line,
                           word_count, account}) {
    engine_.RegisterDataType(top);
  }
}

void SparkWorkloads::BuildUdfs() {
  KlassRegistry& reg = engine_.heap().klasses();
  const Klass* i64_array = reg.Find("i64[]");
  const Klass* f64_array = reg.Find("f64[]");
  const Klass* byte_array = engine_.wk().byte_array();
  const Klass* string_k = engine_.wk().string_klass();
  const Klass* rank_array = reg.Find("Rank[]");
  const Klass* feat_count_array = reg.Find("FeatCount[]");
  const Klass* wc_array = reg.Find("WordCount[]");

  // ---- PageRank -----------------------------------------------------------
  {
    Function* f = udfs_.AddFunction("pr_links_key");
    FunctionBuilder b(f);
    int rec = b.Param("links", IrType::Ref(vertex_links));
    f->return_type = IrType::I64();
    b.Return(b.FieldLoad(rec, vertex_links, "id"));
    b.Done();
    pr_links_key_ = f;
  }
  {
    Function* f = udfs_.AddFunction("pr_rank_key");
    FunctionBuilder b(f);
    int rec = b.Param("rank", IrType::Ref(rank));
    f->return_type = IrType::I64();
    b.Return(b.FieldLoad(rec, rank, "id"));
    b.Done();
    pr_rank_key_ = f;
  }
  {
    // join(links, rank) -> VertexState (the adjacency is copied into the new
    // record, as Spark's cogroup materialization does).
    Function* f = udfs_.AddFunction("pr_join");
    FunctionBuilder b(f);
    int links = b.Param("links", IrType::Ref(vertex_links));
    int rnk = b.Param("rank", IrType::Ref(rank));
    f->return_type = IrType::Ref(vertex_state);
    int neighbors = b.FieldLoad(links, vertex_links, "neighbors");
    int n = b.ArrayLength(neighbors);
    int copy = b.NewArray(i64_array, n);
    b.For(n, [&](int i) {
      b.ArrayStore(copy, i, b.ArrayLoad(neighbors, i, IrType::I64()));
    });
    int out = b.NewObject(vertex_state);
    b.FieldStore(out, vertex_state, "id", b.FieldLoad(links, vertex_links, "id"));
    b.FieldStore(out, vertex_state, "rank", b.FieldLoad(rnk, rank, "rank"));
    b.FieldStore(out, vertex_state, "neighbors", copy);
    b.Return(out);
    b.Done();
    pr_join_ = f;
  }
  {
    // contribs(state) -> Rank[]: rank/degree to every neighbor.
    Function* f = udfs_.AddFunction("pr_contribs");
    FunctionBuilder b(f);
    int state = b.Param("state", IrType::Ref(vertex_state));
    f->return_type = IrType::Ref(rank_array);
    int neighbors = b.FieldLoad(state, vertex_state, "neighbors");
    int n = b.ArrayLength(neighbors);
    int r = b.FieldLoad(state, vertex_state, "rank");
    int nf = b.UnOp(UnOpKind::kI2F, n);
    int share = b.BinOp(BinOpKind::kDiv, r, nf);
    int arr = b.NewArray(rank_array, n);
    b.For(n, [&](int i) {
      int contrib = b.NewObject(rank);
      b.FieldStore(contrib, rank, "id", b.ArrayLoad(neighbors, i, IrType::I64()));
      b.FieldStore(contrib, rank, "rank", share);
      b.ArrayStore(arr, i, contrib);
    });
    b.Return(arr);
    b.Done();
    pr_contribs_ = f;
  }
  {
    Function* f = udfs_.AddFunction("pr_sum");
    FunctionBuilder b(f);
    int a = b.Param("a", IrType::Ref(rank));
    int c = b.Param("b", IrType::Ref(rank));
    f->return_type = IrType::Ref(rank);
    int out = b.NewObject(rank);
    b.FieldStore(out, rank, "id", b.FieldLoad(a, rank, "id"));
    b.FieldStore(out, rank, "rank",
                 b.BinOp(BinOpKind::kAdd, b.FieldLoad(a, rank, "rank"),
                         b.FieldLoad(c, rank, "rank")));
    b.Return(out);
    b.Done();
    pr_sum_ = f;
  }
  {
    // damp(rank) -> 0.15 + 0.85 * rank
    Function* f = udfs_.AddFunction("pr_damp");
    FunctionBuilder b(f);
    int a = b.Param("a", IrType::Ref(rank));
    f->return_type = IrType::Ref(rank);
    int out = b.NewObject(rank);
    b.FieldStore(out, rank, "id", b.FieldLoad(a, rank, "id"));
    int scaled = b.BinOp(BinOpKind::kMul, b.ConstF(0.85), b.FieldLoad(a, rank, "rank"));
    b.FieldStore(out, rank, "rank", b.BinOp(BinOpKind::kAdd, b.ConstF(0.15), scaled));
    b.Return(out);
    b.Done();
    pr_damp_ = f;
  }

  // ---- ConnectedComponents (label propagation) ------------------------------
  {
    // spread(state) -> Rank[n+1]: the current label to every neighbor plus
    // itself (so a vertex never loses its own minimum).
    Function* f = udfs_.AddFunction("cc_spread");
    FunctionBuilder b(f);
    int state = b.Param("state", IrType::Ref(vertex_state));
    f->return_type = IrType::Ref(rank_array);
    int neighbors = b.FieldLoad(state, vertex_state, "neighbors");
    int n = b.ArrayLength(neighbors);
    int label = b.FieldLoad(state, vertex_state, "rank");
    int count = b.BinOp(BinOpKind::kAdd, n, b.ConstI(1));
    int arr = b.NewArray(rank_array, count);
    b.For(n, [&](int i) {
      int msg = b.NewObject(rank);
      b.FieldStore(msg, rank, "id", b.ArrayLoad(neighbors, i, IrType::I64()));
      b.FieldStore(msg, rank, "rank", label);
      b.ArrayStore(arr, i, msg);
    });
    int self_msg = b.NewObject(rank);
    b.FieldStore(self_msg, rank, "id", b.FieldLoad(state, vertex_state, "id"));
    b.FieldStore(self_msg, rank, "rank", label);
    b.ArrayStore(arr, n, self_msg);
    b.Return(arr);
    b.Done();
    cc_spread_ = f;
  }
  {
    Function* f = udfs_.AddFunction("cc_min");
    FunctionBuilder b(f);
    int a = b.Param("a", IrType::Ref(rank));
    int c = b.Param("b", IrType::Ref(rank));
    f->return_type = IrType::Ref(rank);
    int out = b.NewObject(rank);
    b.FieldStore(out, rank, "id", b.FieldLoad(a, rank, "id"));
    b.FieldStore(out, rank, "rank",
                 b.BinOp(BinOpKind::kMin, b.FieldLoad(a, rank, "rank"),
                         b.FieldLoad(c, rank, "rank")));
    b.Return(out);
    b.Done();
    cc_min_ = f;
  }

  // ---- KMeans ---------------------------------------------------------------
  {
    // assign(point, centers) -> ClusterStat{nearest, 1, point values}
    Function* f = udfs_.AddFunction("km_assign");
    FunctionBuilder b(f);
    int p = b.Param("point", IrType::Ref(point));
    int bc = b.Param("centers", IrType::Ref(centers));
    f->return_type = IrType::Ref(cluster_stat);
    int values = b.FieldLoad(p, point, "values");
    int dim = b.FieldLoad(bc, centers, "dim");
    int k = b.FieldLoad(bc, centers, "k");
    int data = b.FieldLoad(bc, centers, "data");
    int best = b.Local("best", IrType::I64());
    int best_dist = b.Local("best_dist", IrType::F64());
    b.AssignTo(best, b.ConstI(0));
    b.AssignTo(best_dist, b.ConstF(1e300));
    b.For(k, [&](int c) {
      int dist = b.Local("", IrType::F64());
      b.AssignTo(dist, b.ConstF(0.0));
      b.For(dim, [&](int d) {
        int base = b.BinOp(BinOpKind::kMul, c, dim);
        int idx = b.BinOp(BinOpKind::kAdd, base, d);
        int diff = b.BinOp(BinOpKind::kSub, b.ArrayLoad(values, d, IrType::F64()),
                           b.ArrayLoad(data, idx, IrType::F64()));
        b.AssignTo(dist, b.BinOp(BinOpKind::kAdd, dist, b.BinOp(BinOpKind::kMul, diff, diff)));
      });
      int better = b.BinOp(BinOpKind::kLt, dist, best_dist);
      b.If(better, [&] {
        b.AssignTo(best_dist, dist);
        b.AssignTo(best, c);
      });
    });
    int copy = b.NewArray(f64_array, dim);
    b.For(dim, [&](int d) {
      b.ArrayStore(copy, d, b.ArrayLoad(values, d, IrType::F64()));
    });
    int out = b.NewObject(cluster_stat);
    b.FieldStore(out, cluster_stat, "cluster", best);
    b.FieldStore(out, cluster_stat, "count", b.ConstI(1));
    b.FieldStore(out, cluster_stat, "sums", copy);
    b.Return(out);
    b.Done();
    km_assign_ = f;
  }
  {
    Function* f = udfs_.AddFunction("km_key");
    FunctionBuilder b(f);
    int rec = b.Param("stat", IrType::Ref(cluster_stat));
    f->return_type = IrType::I64();
    b.Return(b.FieldLoad(rec, cluster_stat, "cluster"));
    b.Done();
    km_key_ = f;
  }
  {
    Function* f = udfs_.AddFunction("km_merge");
    FunctionBuilder b(f);
    int a = b.Param("a", IrType::Ref(cluster_stat));
    int c = b.Param("b", IrType::Ref(cluster_stat));
    f->return_type = IrType::Ref(cluster_stat);
    int sa = b.FieldLoad(a, cluster_stat, "sums");
    int sb = b.FieldLoad(c, cluster_stat, "sums");
    int n = b.ArrayLength(sa);
    int sums = b.NewArray(f64_array, n);
    b.For(n, [&](int d) {
      b.ArrayStore(sums, d,
                   b.BinOp(BinOpKind::kAdd, b.ArrayLoad(sa, d, IrType::F64()),
                           b.ArrayLoad(sb, d, IrType::F64())));
    });
    int out = b.NewObject(cluster_stat);
    b.FieldStore(out, cluster_stat, "cluster", b.FieldLoad(a, cluster_stat, "cluster"));
    b.FieldStore(out, cluster_stat, "count",
                 b.BinOp(BinOpKind::kAdd, b.FieldLoad(a, cluster_stat, "count"),
                         b.FieldLoad(c, cluster_stat, "count")));
    b.FieldStore(out, cluster_stat, "sums", sums);
    b.Return(out);
    b.Done();
    km_merge_ = f;
  }

  // ---- Logistic Regression ---------------------------------------------------
  {
    // grad(point, weights) -> GradVec{0, (sigmoid(w.x) - y) * x}
    Function* f = udfs_.AddFunction("lr_grad");
    FunctionBuilder b(f);
    int p = b.Param("point", IrType::Ref(labeled_point));
    int w = b.Param("weights", IrType::Ref(weights));
    f->return_type = IrType::Ref(grad_vec);
    int vec = b.FieldLoad(p, labeled_point, "features");
    int x = b.FieldLoad(vec, dense_vector, "values");
    int wd = b.FieldLoad(w, weights, "data");
    int dim = b.ArrayLength(x);
    int margin = b.Local("margin", IrType::F64());
    b.AssignTo(margin, b.ConstF(0.0));
    b.For(dim, [&](int d) {
      int term = b.BinOp(BinOpKind::kMul, b.ArrayLoad(wd, d, IrType::F64()),
                         b.ArrayLoad(x, d, IrType::F64()));
      b.AssignTo(margin, b.BinOp(BinOpKind::kAdd, margin, term));
    });
    int neg = b.UnOp(UnOpKind::kNeg, margin);
    int e = b.CallNative("exp", {neg}, IrType::F64());
    int denom = b.BinOp(BinOpKind::kAdd, b.ConstF(1.0), e);
    int prob = b.BinOp(BinOpKind::kDiv, b.ConstF(1.0), denom);
    int scale = b.BinOp(BinOpKind::kSub, prob, b.FieldLoad(p, labeled_point, "label"));
    int g = b.NewArray(f64_array, dim);
    b.For(dim, [&](int d) {
      b.ArrayStore(g, d, b.BinOp(BinOpKind::kMul, scale, b.ArrayLoad(x, d, IrType::F64())));
    });
    int out = b.NewObject(grad_vec);
    b.FieldStore(out, grad_vec, "key", b.ConstI(0));
    b.FieldStore(out, grad_vec, "values", g);
    b.Return(out);
    b.Done();
    lr_grad_ = f;
  }
  {
    Function* f = udfs_.AddFunction("lr_key");
    FunctionBuilder b(f);
    int rec = b.Param("g", IrType::Ref(grad_vec));
    f->return_type = IrType::I64();
    b.Return(b.FieldLoad(rec, grad_vec, "key"));
    b.Done();
    lr_key_ = f;
  }
  {
    Function* f = udfs_.AddFunction("lr_add");
    FunctionBuilder b(f);
    int a = b.Param("a", IrType::Ref(grad_vec));
    int c = b.Param("b", IrType::Ref(grad_vec));
    f->return_type = IrType::Ref(grad_vec);
    int va = b.FieldLoad(a, grad_vec, "values");
    int vb = b.FieldLoad(c, grad_vec, "values");
    int n = b.ArrayLength(va);
    int sums = b.NewArray(f64_array, n);
    b.For(n, [&](int d) {
      b.ArrayStore(sums, d,
                   b.BinOp(BinOpKind::kAdd, b.ArrayLoad(va, d, IrType::F64()),
                           b.ArrayLoad(vb, d, IrType::F64())));
    });
    int out = b.NewObject(grad_vec);
    b.FieldStore(out, grad_vec, "key", b.FieldLoad(a, grad_vec, "key"));
    b.FieldStore(out, grad_vec, "values", sums);
    b.Return(out);
    b.Done();
    lr_add_ = f;
  }

  // ---- Chi Square Selector -----------------------------------------------------
  {
    // cells(point) -> FeatCount[]: one contingency cell per active feature,
    // key = feature*4 + label*2 + (value > 0).
    Function* f = udfs_.AddFunction("cs_cells");
    FunctionBuilder b(f);
    int p = b.Param("point", IrType::Ref(sparse_point));
    f->return_type = IrType::Ref(feat_count_array);
    int vec = b.FieldLoad(p, sparse_point, "features");
    int indices = b.FieldLoad(vec, sparse_vector, "indices");
    int values = b.FieldLoad(vec, sparse_vector, "values");
    int n = b.ArrayLength(indices);
    int label = b.FieldLoad(p, sparse_point, "label");
    int label_bit = b.UnOp(UnOpKind::kF2I, label);
    int arr = b.NewArray(feat_count_array, n);
    b.For(n, [&](int i) {
      int feature = b.ArrayLoad(indices, i, IrType::I64());
      int v = b.ArrayLoad(values, i, IrType::F64());
      int positive = b.BinOp(BinOpKind::kGt, v, b.ConstF(0.0));
      int key = b.BinOp(
          BinOpKind::kAdd,
          b.BinOp(BinOpKind::kAdd, b.BinOp(BinOpKind::kMul, feature, b.ConstI(4)),
                  b.BinOp(BinOpKind::kMul, label_bit, b.ConstI(2))),
          positive);
      int cell = b.NewObject(feat_count);
      b.FieldStore(cell, feat_count, "key", key);
      b.FieldStore(cell, feat_count, "count", b.ConstI(1));
      b.ArrayStore(arr, i, cell);
    });
    b.Return(arr);
    b.Done();
    cs_cells_ = f;
  }
  {
    Function* f = udfs_.AddFunction("cs_key");
    FunctionBuilder b(f);
    int rec = b.Param("cell", IrType::Ref(feat_count));
    f->return_type = IrType::I64();
    b.Return(b.FieldLoad(rec, feat_count, "key"));
    b.Done();
    cs_key_ = f;
  }
  {
    Function* f = udfs_.AddFunction("cs_add");
    FunctionBuilder b(f);
    int a = b.Param("a", IrType::Ref(feat_count));
    int c = b.Param("b", IrType::Ref(feat_count));
    f->return_type = IrType::Ref(feat_count);
    int out = b.NewObject(feat_count);
    b.FieldStore(out, feat_count, "key", b.FieldLoad(a, feat_count, "key"));
    b.FieldStore(out, feat_count, "count",
                 b.BinOp(BinOpKind::kAdd, b.FieldLoad(a, feat_count, "count"),
                         b.FieldLoad(c, feat_count, "count")));
    b.Return(out);
    b.Done();
    cs_add_ = f;
  }

  // ---- Gradient Boosting (stump ensemble on sign features) ---------------------
  {
    // stats(point, ensemble) -> FeatCount[dim] with per-feature residual
    // direction (count field reused as a fixed-point residual sum).
    Function* f = udfs_.AddFunction("gb_stats");
    FunctionBuilder b(f);
    int p = b.Param("point", IrType::Ref(labeled_point));
    int w = b.Param("ensemble", IrType::Ref(weights));
    f->return_type = IrType::Ref(feat_count_array);
    int vec = b.FieldLoad(p, labeled_point, "features");
    int x = b.FieldLoad(vec, dense_vector, "values");
    int dim = b.ArrayLength(x);
    int wd = b.FieldLoad(w, weights, "data");  // per-feature stump weights
    // Current prediction: sum_f w_f * sign(x_f).
    int pred = b.Local("pred", IrType::F64());
    b.AssignTo(pred, b.ConstF(0.0));
    b.For(dim, [&](int d) {
      int positive = b.BinOp(BinOpKind::kGt, b.ArrayLoad(x, d, IrType::F64()), b.ConstF(0.0));
      int sign = b.BinOp(BinOpKind::kSub, b.BinOp(BinOpKind::kMul, positive, b.ConstI(2)),
                         b.ConstI(1));
      int signf = b.UnOp(UnOpKind::kI2F, sign);
      int term = b.BinOp(BinOpKind::kMul, b.ArrayLoad(wd, d, IrType::F64()), signf);
      b.AssignTo(pred, b.BinOp(BinOpKind::kAdd, pred, term));
    });
    int y = b.BinOp(BinOpKind::kSub,
                    b.BinOp(BinOpKind::kMul, b.FieldLoad(p, labeled_point, "label"),
                            b.ConstF(2.0)),
                    b.ConstF(1.0));
    int residual = b.BinOp(BinOpKind::kSub, y, pred);
    int arr = b.NewArray(feat_count_array, dim);
    b.For(dim, [&](int d) {
      int positive = b.BinOp(BinOpKind::kGt, b.ArrayLoad(x, d, IrType::F64()), b.ConstF(0.0));
      int sign = b.BinOp(BinOpKind::kSub, b.BinOp(BinOpKind::kMul, positive, b.ConstI(2)),
                         b.ConstI(1));
      int signf = b.UnOp(UnOpKind::kI2F, sign);
      int directed = b.BinOp(BinOpKind::kMul, residual, signf);
      int fixed_point = b.UnOp(UnOpKind::kF2I,
                               b.BinOp(BinOpKind::kMul, directed, b.ConstF(1024.0)));
      int cell = b.NewObject(feat_count);
      b.FieldStore(cell, feat_count, "key", d);
      b.FieldStore(cell, feat_count, "count", fixed_point);
      b.ArrayStore(arr, d, cell);
    });
    b.Return(arr);
    b.Done();
    gb_stats_ = f;
  }
  gb_key_ = cs_key_;
  gb_add_ = cs_add_;

  // ---- WordCount -----------------------------------------------------------------
  {
    // tokenize(line) -> WordCount[] splitting on single spaces.
    Function* f = udfs_.AddFunction("wc_tokenize");
    FunctionBuilder b(f);
    int rec = b.Param("line", IrType::Ref(line));
    f->return_type = IrType::Ref(wc_array);
    int text = b.FieldLoad(rec, line, "text");
    int chars = b.FieldLoad(text, string_k, "value");
    int len = b.ArrayLength(chars);
    int space = b.ConstI(' ');
    int words = b.Local("words", IrType::I64());
    b.AssignTo(words, b.ConstI(1));
    b.For(len, [&](int i) {
      int c = b.ArrayLoad(chars, i, IrType::I64());
      b.If(b.BinOp(BinOpKind::kEq, c, space), [&] {
        b.AssignTo(words, b.BinOp(BinOpKind::kAdd, words, b.ConstI(1)));
      });
    });
    int arr = b.NewArray(wc_array, words);
    int word_index = b.Local("word_index", IrType::I64());
    int start = b.Local("start", IrType::I64());
    int pos = b.Local("pos", IrType::I64());
    b.AssignTo(word_index, b.ConstI(0));
    b.AssignTo(start, b.ConstI(0));
    b.AssignTo(pos, b.ConstI(0));
    auto emit_word = [&]() {
      int word_len = b.BinOp(BinOpKind::kSub, pos, start);
      int word_chars = b.NewArray(byte_array, word_len);
      b.For(word_len, [&](int k) {
        int src = b.BinOp(BinOpKind::kAdd, start, k);
        b.ArrayStore(word_chars, k, b.ArrayLoad(chars, src, IrType::I64()));
      });
      int word = b.NewObject(string_k);
      b.FieldStore(word, string_k, "value", word_chars);
      int wc = b.NewObject(word_count);
      b.FieldStore(wc, word_count, "word", word);
      b.FieldStore(wc, word_count, "count", b.ConstI(1));
      b.ArrayStore(arr, word_index, wc);
      b.AssignTo(word_index, b.BinOp(BinOpKind::kAdd, word_index, b.ConstI(1)));
    };
    int loop = b.NewLabel();
    int done = b.NewLabel();
    b.PlaceLabel(loop);
    b.Branch(b.BinOp(BinOpKind::kGe, pos, len), done);
    int c = b.ArrayLoad(chars, pos, IrType::I64());
    b.If(b.BinOp(BinOpKind::kEq, c, space), [&] {
      emit_word();
      b.AssignTo(start, b.BinOp(BinOpKind::kAdd, pos, b.ConstI(1)));
    });
    b.AssignTo(pos, b.BinOp(BinOpKind::kAdd, pos, b.ConstI(1)));
    b.Jump(loop);
    b.PlaceLabel(done);
    emit_word();
    b.Return(arr);
    b.Done();
    wc_tokenize_ = f;
  }
  {
    Function* f = udfs_.AddFunction("wc_key");
    FunctionBuilder b(f);
    int rec = b.Param("wc", IrType::Ref(word_count));
    f->return_type = IrType::Ref(string_k);
    b.Return(b.FieldLoad(rec, word_count, "word"));
    b.Done();
    wc_key_ = f;
  }
  {
    Function* f = udfs_.AddFunction("wc_sum");
    FunctionBuilder b(f);
    int a = b.Param("a", IrType::Ref(word_count));
    int c = b.Param("b", IrType::Ref(word_count));
    f->return_type = IrType::Ref(word_count);
    int out = b.NewObject(word_count);
    b.FieldStore(out, word_count, "word", b.FieldLoad(a, word_count, "word"));
    b.FieldStore(out, word_count, "count",
                 b.BinOp(BinOpKind::kAdd, b.FieldLoad(a, word_count, "count"),
                         b.FieldLoad(c, word_count, "count")));
    b.Return(out);
    b.Done();
    wc_sum_ = f;
  }

  // ---- StackOverflow Analytics (§4.4 abort workload) ----------------------------
  {
    Function* f = udfs_.AddFunction("acct_key");
    FunctionBuilder b(f);
    int rec = b.Param("acct", IrType::Ref(account));
    f->return_type = IrType::I64();
    b.Return(b.FieldLoad(rec, account, "user"));
    b.Done();
    acct_key_ = f;
  }
  {
    // merge(a, b): append b's post lengths to a. The common case copies into
    // a fresh Account at the same capacity; overflowing the capacity takes
    // the "resize" branch, whose capacity mutation of the *input* record is
    // the paper's second violation condition — the fast path aborts there.
    Function* f = udfs_.AddFunction("acct_merge");
    FunctionBuilder b(f);
    int a = b.Param("a", IrType::Ref(account));
    int c = b.Param("b", IrType::Ref(account));
    f->return_type = IrType::Ref(account);
    int size_a = b.FieldLoad(a, account, "size");
    int size_b = b.FieldLoad(c, account, "size");
    int total = b.BinOp(BinOpKind::kAdd, size_a, size_b);
    int cap = b.FieldLoad(a, account, "capacity");
    int overflow = b.BinOp(BinOpKind::kGt, total, cap);
    b.If(overflow, [&] {
      // Vector.resize: grow the backing store in place. Mutating the
      // deserialized record is illegal over inlined bytes; the transformer
      // fences this store with an ABORT.
      int doubled = b.BinOp(BinOpKind::kMul, cap, b.ConstI(2));
      b.FieldStore(a, account, "capacity", doubled);
    });
    int new_cap = b.FieldLoad(a, account, "capacity");
    int la = b.FieldLoad(a, account, "lengths");
    int lb = b.FieldLoad(c, account, "lengths");
    int merged = b.NewArray(reg.Find("i64[]"), new_cap);
    b.For(size_a, [&](int i) {
      b.ArrayStore(merged, i, b.ArrayLoad(la, i, IrType::I64()));
    });
    b.For(size_b, [&](int i) {
      int at = b.BinOp(BinOpKind::kAdd, size_a, i);
      b.ArrayStore(merged, at, b.ArrayLoad(lb, i, IrType::I64()));
    });
    int out = b.NewObject(account);
    b.FieldStore(out, account, "user", b.FieldLoad(a, account, "user"));
    b.FieldStore(out, account, "size", total);
    b.FieldStore(out, account, "capacity", new_cap);
    b.FieldStore(out, account, "lengths", merged);
    b.Return(out);
    b.Done();
    acct_merge_ = f;
  }
  (void)i64_array;
  acct_from_post_ = nullptr;  // accounts are built directly as sources
}

// ===========================================================================
// Drivers
// ===========================================================================

namespace {

// Reads a f64 field from a collected record.
double ReadF64Field(Heap& heap, ObjRef rec, const Klass* klass, const char* field) {
  return heap.GetPrim<double>(rec, klass->FindField(field)->offset);
}
int64_t ReadI64Field(Heap& heap, ObjRef rec, const Klass* klass, const char* field) {
  return heap.GetPrim<int64_t>(rec, klass->FindField(field)->offset);
}

}  // namespace

WorkloadResult SparkWorkloads::RunPageRank(const SyntheticGraph& graph, int iterations) {
  Heap& heap = engine_.heap();
  KlassRegistry& reg = heap.klasses();
  const Klass* i64_array = reg.Find("i64[]");

  DatasetPtr links =
      engine_.Source(vertex_links, graph.num_vertices, [&](int64_t v, RootScope& scope) {
        const auto& neighbors = graph.out_edges[static_cast<size_t>(v)];
        size_t arr = scope.Push(heap.AllocArray(i64_array, neighbors.size()));
        for (size_t i = 0; i < neighbors.size(); ++i) {
          heap.ASet<int64_t>(scope.Get(arr), static_cast<int64_t>(i), neighbors[i]);
        }
        ObjRef rec = heap.AllocObject(vertex_links);
        heap.SetPrim<int64_t>(rec, vertex_links->FindField("id")->offset, v);
        heap.SetRef(rec, vertex_links->FindField("neighbors")->offset, scope.Get(arr));
        return rec;
      });
  DatasetPtr ranks = engine_.Source(rank, graph.num_vertices, [&](int64_t v, RootScope&) {
    ObjRef rec = heap.AllocObject(rank);
    heap.SetPrim<int64_t>(rec, rank->FindField("id")->offset, v);
    heap.SetPrim<double>(rec, rank->FindField("rank")->offset, 1.0);
    return rec;
  });

  engine_.ResetMetrics();
  for (int iter = 0; iter < iterations; ++iter) {
    DatasetPtr state = engine_.JoinByKey(links, KeySpec{pr_links_key_, false}, ranks,
                                         KeySpec{pr_rank_key_, false}, udfs_, pr_join_,
                                         vertex_state);
    DatasetPtr summed =
        engine_.ReduceByKey(state, udfs_, {NarrowOp::FlatMap(pr_contribs_, rank)},
                            KeySpec{pr_rank_key_, false}, pr_sum_);
    ranks = engine_.RunStage(summed, udfs_, {NarrowOp::Map(pr_damp_, rank)});
  }

  WorkloadResult result;
  result.name = "PageRank";
  RootScope scope(heap);
  for (size_t slot : engine_.CollectToHeap(ranks, scope)) {
    result.checksum += ReadF64Field(heap, scope.Get(slot), rank, "rank");
    result.records += 1;
  }
  return result;
}

WorkloadResult SparkWorkloads::RunConnectedComponents(const SyntheticGraph& graph,
                                                      int iterations) {
  Heap& heap = engine_.heap();
  const Klass* i64_array = heap.klasses().Find("i64[]");

  DatasetPtr links =
      engine_.Source(vertex_links, graph.num_vertices, [&](int64_t v, RootScope& scope) {
        const auto& neighbors = graph.out_edges[static_cast<size_t>(v)];
        size_t arr = scope.Push(heap.AllocArray(i64_array, neighbors.size()));
        for (size_t i = 0; i < neighbors.size(); ++i) {
          heap.ASet<int64_t>(scope.Get(arr), static_cast<int64_t>(i), neighbors[i]);
        }
        ObjRef rec = heap.AllocObject(vertex_links);
        heap.SetPrim<int64_t>(rec, vertex_links->FindField("id")->offset, v);
        heap.SetRef(rec, vertex_links->FindField("neighbors")->offset, scope.Get(arr));
        return rec;
      });
  // Labels reuse the Rank record: rank == the current component label.
  DatasetPtr labels = engine_.Source(rank, graph.num_vertices, [&](int64_t v, RootScope&) {
    ObjRef rec = heap.AllocObject(rank);
    heap.SetPrim<int64_t>(rec, rank->FindField("id")->offset, v);
    heap.SetPrim<double>(rec, rank->FindField("rank")->offset, static_cast<double>(v));
    return rec;
  });

  engine_.ResetMetrics();
  for (int iter = 0; iter < iterations; ++iter) {
    DatasetPtr state = engine_.JoinByKey(links, KeySpec{pr_links_key_, false}, labels,
                                         KeySpec{pr_rank_key_, false}, udfs_, pr_join_,
                                         vertex_state);
    labels = engine_.ReduceByKey(state, udfs_, {NarrowOp::FlatMap(cc_spread_, rank)},
                                 KeySpec{pr_rank_key_, false}, cc_min_);
  }

  WorkloadResult result;
  result.name = "ConnectedComponents";
  RootScope scope(heap);
  for (size_t slot : engine_.CollectToHeap(labels, scope)) {
    result.checksum += ReadF64Field(heap, scope.Get(slot), rank, "rank");
    result.records += 1;
  }
  return result;
}

WorkloadResult SparkWorkloads::RunKMeans(const SyntheticPoints& data, int k, int iterations) {
  Heap& heap = engine_.heap();
  const Klass* f64_array = heap.klasses().Find("f64[]");
  int dim = data.dim;

  DatasetPtr points = engine_.Source(
      point, static_cast<int64_t>(data.values.size()), [&](int64_t i, RootScope& scope) {
        const auto& value = data.values[static_cast<size_t>(i)];
        size_t arr = scope.Push(heap.AllocArray(f64_array, value.size()));
        for (size_t d = 0; d < value.size(); ++d) {
          heap.ASet<double>(scope.Get(arr), static_cast<int64_t>(d), value[d]);
        }
        ObjRef rec = heap.AllocObject(point);
        heap.SetPrim<int32_t>(rec, point->FindField("numActives")->offset,
                              static_cast<int32_t>(value.size()));
        heap.SetRef(rec, point->FindField("values")->offset, scope.Get(arr));
        return rec;
      });

  // Initial centers: the first k points.
  std::vector<double> center_data(static_cast<size_t>(k * dim));
  for (int c = 0; c < k; ++c) {
    for (int d = 0; d < dim; ++d) {
      center_data[static_cast<size_t>(c * dim + d)] =
          data.values[static_cast<size_t>(c)][static_cast<size_t>(d)];
    }
  }

  engine_.ResetMetrics();
  WorkloadResult result;
  result.name = "KMeans";
  for (int iter = 0; iter < iterations; ++iter) {
    RootScope scope(heap);
    size_t arr = scope.Push(heap.AllocArray(f64_array, center_data.size()));
    for (size_t i = 0; i < center_data.size(); ++i) {
      heap.ASet<double>(scope.Get(arr), static_cast<int64_t>(i), center_data[i]);
    }
    size_t bc_obj = scope.Push(heap.AllocObject(centers));
    heap.SetPrim<int32_t>(scope.Get(bc_obj), centers->FindField("k")->offset, k);
    heap.SetPrim<int32_t>(scope.Get(bc_obj), centers->FindField("dim")->offset, dim);
    heap.SetRef(scope.Get(bc_obj), centers->FindField("data")->offset, scope.Get(arr));
    BroadcastVar bc = engine_.MakeBroadcast(scope.Get(bc_obj), centers);

    DatasetPtr stats =
        engine_.ReduceByKey(points, udfs_, {NarrowOp::Map(km_assign_, cluster_stat)},
                            KeySpec{km_key_, false}, km_merge_, &bc);

    RootScope collect_scope(heap);
    for (size_t slot : engine_.CollectToHeap(stats, collect_scope)) {
      ObjRef rec = collect_scope.Get(slot);
      int64_t cluster = ReadI64Field(heap, rec, cluster_stat, "cluster");
      int64_t count = ReadI64Field(heap, rec, cluster_stat, "count");
      ObjRef sums = heap.GetRef(rec, cluster_stat->FindField("sums")->offset);
      for (int d = 0; d < dim; ++d) {
        center_data[static_cast<size_t>(cluster * dim + d)] =
            heap.AGet<double>(sums, d) / static_cast<double>(count);
      }
    }
  }
  for (double v : center_data) {
    result.checksum += v;
  }
  result.records = static_cast<int64_t>(data.values.size());
  return result;
}

WorkloadResult SparkWorkloads::RunLogisticRegression(const SyntheticLabeledPoints& data,
                                                     int iterations, double learning_rate) {
  Heap& heap = engine_.heap();
  const Klass* f64_array = heap.klasses().Find("f64[]");
  int dim = data.dim;

  DatasetPtr points = engine_.Source(
      labeled_point, static_cast<int64_t>(data.features.size()),
      [&](int64_t i, RootScope& scope) {
        const auto& feature = data.features[static_cast<size_t>(i)];
        size_t arr = scope.Push(heap.AllocArray(f64_array, feature.size()));
        for (size_t d = 0; d < feature.size(); ++d) {
          heap.ASet<double>(scope.Get(arr), static_cast<int64_t>(d), feature[d]);
        }
        size_t vec = scope.Push(heap.AllocObject(dense_vector));
        heap.SetPrim<int32_t>(scope.Get(vec), dense_vector->FindField("numActives")->offset,
                              static_cast<int32_t>(feature.size()));
        heap.SetRef(scope.Get(vec), dense_vector->FindField("values")->offset, scope.Get(arr));
        ObjRef rec = heap.AllocObject(labeled_point);
        heap.SetPrim<double>(rec, labeled_point->FindField("label")->offset,
                             data.labels[static_cast<size_t>(i)]);
        heap.SetRef(rec, labeled_point->FindField("features")->offset, scope.Get(vec));
        return rec;
      });

  std::vector<double> w(static_cast<size_t>(dim), 0.0);
  engine_.ResetMetrics();
  for (int iter = 0; iter < iterations; ++iter) {
    RootScope scope(heap);
    size_t arr = scope.Push(heap.AllocArray(f64_array, w.size()));
    for (size_t d = 0; d < w.size(); ++d) {
      heap.ASet<double>(scope.Get(arr), static_cast<int64_t>(d), w[d]);
    }
    size_t bc_obj = scope.Push(heap.AllocObject(weights));
    heap.SetPrim<int32_t>(scope.Get(bc_obj), weights->FindField("dim")->offset, dim);
    heap.SetRef(scope.Get(bc_obj), weights->FindField("data")->offset, scope.Get(arr));
    BroadcastVar bc = engine_.MakeBroadcast(scope.Get(bc_obj), weights);

    DatasetPtr grads = engine_.ReduceByKey(points, udfs_, {NarrowOp::Map(lr_grad_, grad_vec)},
                                           KeySpec{lr_key_, false}, lr_add_, &bc);
    RootScope collect_scope(heap);
    std::vector<size_t> slots = engine_.CollectToHeap(grads, collect_scope);
    GERENUK_CHECK_EQ(slots.size(), 1u);
    ObjRef g = collect_scope.Get(slots[0]);
    ObjRef values = heap.GetRef(g, grad_vec->FindField("values")->offset);
    double n = static_cast<double>(data.features.size());
    for (int d = 0; d < dim; ++d) {
      w[static_cast<size_t>(d)] -= learning_rate * heap.AGet<double>(values, d) / n;
    }
  }

  WorkloadResult result;
  result.name = "LogisticRegression";
  for (double v : w) {
    result.checksum += v;
  }
  result.records = static_cast<int64_t>(data.features.size());
  return result;
}

WorkloadResult SparkWorkloads::RunChiSquareSelector(const SyntheticLabeledPoints& data) {
  Heap& heap = engine_.heap();
  const Klass* f64_array = heap.klasses().Find("f64[]");
  const Klass* i32_array = heap.klasses().Find("i32[]");

  // Sparsify: keep features with |x| > 0.8 (roughly half).
  DatasetPtr points = engine_.Source(
      sparse_point, static_cast<int64_t>(data.features.size()),
      [&](int64_t i, RootScope& scope) {
        const auto& feature = data.features[static_cast<size_t>(i)];
        std::vector<int32_t> indices;
        std::vector<double> values;
        for (size_t d = 0; d < feature.size(); ++d) {
          if (std::fabs(feature[d]) > 0.8) {
            indices.push_back(static_cast<int32_t>(d));
            values.push_back(feature[d]);
          }
        }
        if (indices.empty()) {
          indices.push_back(0);
          values.push_back(feature[0]);
        }
        size_t idx_arr = scope.Push(heap.AllocArray(i32_array, indices.size()));
        for (size_t j = 0; j < indices.size(); ++j) {
          heap.ASet<int32_t>(scope.Get(idx_arr), static_cast<int64_t>(j), indices[j]);
        }
        size_t val_arr = scope.Push(heap.AllocArray(f64_array, values.size()));
        for (size_t j = 0; j < values.size(); ++j) {
          heap.ASet<double>(scope.Get(val_arr), static_cast<int64_t>(j), values[j]);
        }
        size_t vec = scope.Push(heap.AllocObject(sparse_vector));
        heap.SetPrim<int32_t>(scope.Get(vec), sparse_vector->FindField("numActives")->offset,
                              static_cast<int32_t>(indices.size()));
        heap.SetRef(scope.Get(vec), sparse_vector->FindField("indices")->offset,
                    scope.Get(idx_arr));
        heap.SetRef(scope.Get(vec), sparse_vector->FindField("values")->offset,
                    scope.Get(val_arr));
        ObjRef rec = heap.AllocObject(sparse_point);
        heap.SetPrim<double>(rec, sparse_point->FindField("label")->offset,
                             data.labels[static_cast<size_t>(i)]);
        heap.SetRef(rec, sparse_point->FindField("features")->offset, scope.Get(vec));
        return rec;
      });

  engine_.ResetMetrics();
  DatasetPtr cells =
      engine_.ReduceByKey(points, udfs_, {NarrowOp::FlatMap(cs_cells_, feat_count)},
                          KeySpec{cs_key_, false}, cs_add_);

  // Driver-side chi-square statistic per feature from the contingency cells.
  std::vector<std::array<double, 4>> tables(static_cast<size_t>(data.dim), {0, 0, 0, 0});
  RootScope scope(heap);
  for (size_t slot : engine_.CollectToHeap(cells, scope)) {
    ObjRef rec = scope.Get(slot);
    int64_t key = ReadI64Field(heap, rec, feat_count, "key");
    int64_t count = ReadI64Field(heap, rec, feat_count, "count");
    tables[static_cast<size_t>(key / 4)][static_cast<size_t>(key % 4)] +=
        static_cast<double>(count);
  }
  WorkloadResult result;
  result.name = "ChiSquareSelector";
  for (const auto& t : tables) {
    double n = t[0] + t[1] + t[2] + t[3];
    if (n == 0) {
      continue;
    }
    double chi2 = 0.0;
    for (int lbl = 0; lbl < 2; ++lbl) {
      for (int bucket = 0; bucket < 2; ++bucket) {
        double observed = t[static_cast<size_t>(lbl * 2 + bucket)];
        double row = t[static_cast<size_t>(lbl * 2)] + t[static_cast<size_t>(lbl * 2 + 1)];
        double col = t[static_cast<size_t>(bucket)] + t[static_cast<size_t>(2 + bucket)];
        double expected = row * col / n;
        if (expected > 0) {
          chi2 += (observed - expected) * (observed - expected) / expected;
        }
      }
    }
    result.checksum += chi2;
  }
  result.records = static_cast<int64_t>(data.features.size());
  return result;
}

WorkloadResult SparkWorkloads::RunGradientBoosting(const SyntheticLabeledPoints& data,
                                                   int rounds, double learning_rate) {
  Heap& heap = engine_.heap();
  const Klass* f64_array = heap.klasses().Find("f64[]");
  int dim = data.dim;

  DatasetPtr points = engine_.Source(
      labeled_point, static_cast<int64_t>(data.features.size()),
      [&](int64_t i, RootScope& scope) {
        const auto& feature = data.features[static_cast<size_t>(i)];
        size_t arr = scope.Push(heap.AllocArray(f64_array, feature.size()));
        for (size_t d = 0; d < feature.size(); ++d) {
          heap.ASet<double>(scope.Get(arr), static_cast<int64_t>(d), feature[d]);
        }
        size_t vec = scope.Push(heap.AllocObject(dense_vector));
        heap.SetPrim<int32_t>(scope.Get(vec), dense_vector->FindField("numActives")->offset,
                              static_cast<int32_t>(feature.size()));
        heap.SetRef(scope.Get(vec), dense_vector->FindField("values")->offset, scope.Get(arr));
        ObjRef rec = heap.AllocObject(labeled_point);
        heap.SetPrim<double>(rec, labeled_point->FindField("label")->offset,
                             data.labels[static_cast<size_t>(i)]);
        heap.SetRef(rec, labeled_point->FindField("features")->offset, scope.Get(vec));
        return rec;
      });

  std::vector<double> stump_weights(static_cast<size_t>(dim), 0.0);
  engine_.ResetMetrics();
  for (int round = 0; round < rounds; ++round) {
    RootScope scope(heap);
    size_t arr = scope.Push(heap.AllocArray(f64_array, stump_weights.size()));
    for (size_t d = 0; d < stump_weights.size(); ++d) {
      heap.ASet<double>(scope.Get(arr), static_cast<int64_t>(d), stump_weights[d]);
    }
    size_t bc_obj = scope.Push(heap.AllocObject(weights));
    heap.SetPrim<int32_t>(scope.Get(bc_obj), weights->FindField("dim")->offset, dim);
    heap.SetRef(scope.Get(bc_obj), weights->FindField("data")->offset, scope.Get(arr));
    BroadcastVar bc = engine_.MakeBroadcast(scope.Get(bc_obj), weights);

    DatasetPtr stats =
        engine_.ReduceByKey(points, udfs_, {NarrowOp::FlatMap(gb_stats_, feat_count)},
                            KeySpec{gb_key_, false}, gb_add_, &bc);
    // Pick the feature with the largest |residual correlation| and boost it.
    RootScope collect_scope(heap);
    int64_t best_feature = 0;
    double best_sum = 0.0;
    for (size_t slot : engine_.CollectToHeap(stats, collect_scope)) {
      ObjRef rec = collect_scope.Get(slot);
      double sum = static_cast<double>(ReadI64Field(heap, rec, feat_count, "count")) / 1024.0;
      if (std::fabs(sum) > std::fabs(best_sum)) {
        best_sum = sum;
        best_feature = ReadI64Field(heap, rec, feat_count, "key");
      }
    }
    stump_weights[static_cast<size_t>(best_feature)] +=
        learning_rate * best_sum / static_cast<double>(data.features.size());
  }

  WorkloadResult result;
  result.name = "GradientBoosting";
  for (double v : stump_weights) {
    result.checksum += v;
  }
  result.records = static_cast<int64_t>(data.features.size());
  return result;
}

WorkloadResult SparkWorkloads::RunWordCount(const std::vector<std::string>& lines) {
  Heap& heap = engine_.heap();
  DatasetPtr input = engine_.Source(
      line, static_cast<int64_t>(lines.size()), [&](int64_t i, RootScope& scope) {
        size_t s = scope.Push(engine_.wk().AllocString(lines[static_cast<size_t>(i)]));
        ObjRef rec = heap.AllocObject(line);
        heap.SetRef(rec, line->FindField("text")->offset, scope.Get(s));
        return rec;
      });
  engine_.ResetMetrics();
  DatasetPtr counts =
      engine_.ReduceByKey(input, udfs_, {NarrowOp::FlatMap(wc_tokenize_, word_count)},
                          KeySpec{wc_key_, true}, wc_sum_);
  WorkloadResult result;
  result.name = "WordCount";
  RootScope scope(heap);
  for (size_t slot : engine_.CollectToHeap(counts, scope)) {
    result.checksum +=
        static_cast<double>(ReadI64Field(heap, scope.Get(slot), word_count, "count"));
    result.records += 1;
  }
  return result;
}

WorkloadResult SparkWorkloads::RunAccountGrouping(const std::vector<SyntheticPost>& posts,
                                                  int64_t initial_capacity) {
  Heap& heap = engine_.heap();
  const Klass* i64_array = heap.klasses().Find("i64[]");

  // Each post arrives as a single-entry Account; grouping by user folds them
  // together, occasionally overflowing the initial capacity (the resize).
  DatasetPtr singles = engine_.Source(
      account, static_cast<int64_t>(posts.size()), [&](int64_t i, RootScope& scope) {
        const SyntheticPost& post = posts[static_cast<size_t>(i)];
        size_t arr = scope.Push(heap.AllocArray(i64_array, initial_capacity));
        heap.ASet<int64_t>(scope.Get(arr), 0, static_cast<int64_t>(post.text.size()));
        ObjRef rec = heap.AllocObject(account);
        heap.SetPrim<int64_t>(rec, account->FindField("user")->offset, post.user_id);
        heap.SetPrim<int64_t>(rec, account->FindField("size")->offset, 1);
        heap.SetPrim<int64_t>(rec, account->FindField("capacity")->offset, initial_capacity);
        heap.SetRef(rec, account->FindField("lengths")->offset, scope.Get(arr));
        return rec;
      });

  engine_.ResetMetrics();
  DatasetPtr grouped =
      engine_.ReduceByKey(singles, udfs_, {}, KeySpec{acct_key_, false}, acct_merge_);

  WorkloadResult result;
  result.name = "AccountGrouping";
  RootScope scope(heap);
  for (size_t slot : engine_.CollectToHeap(grouped, scope)) {
    result.checksum += static_cast<double>(ReadI64Field(heap, scope.Get(slot), account, "size"));
    result.records += 1;
  }
  return result;
}

}  // namespace gerenuk
