#include "src/workloads/datagen.h"

#include <cmath>

namespace gerenuk {

int64_t SyntheticGraph::num_edges() const {
  int64_t total = 0;
  for (const auto& adjacency : out_edges) {
    total += static_cast<int64_t>(adjacency.size());
  }
  return total;
}

SyntheticGraph MakePowerLawGraph(int64_t vertices, int64_t edges, uint64_t seed) {
  GERENUK_CHECK_GE(edges, vertices);
  SyntheticGraph graph;
  graph.num_vertices = vertices;
  graph.out_edges.resize(static_cast<size_t>(vertices));
  Rng rng(seed);
  ZipfSampler popularity(static_cast<uint64_t>(vertices), 1.1);
  // One guaranteed outgoing edge per vertex (no dangling sources), the rest
  // with Zipf-skewed sources and destinations.
  for (int64_t v = 0; v < vertices; ++v) {
    int64_t dst = static_cast<int64_t>(popularity.Sample(rng));
    if (dst == v) {
      dst = (dst + 1) % vertices;
    }
    graph.out_edges[static_cast<size_t>(v)].push_back(dst);
  }
  for (int64_t e = vertices; e < edges; ++e) {
    int64_t src = static_cast<int64_t>(popularity.Sample(rng));
    int64_t dst = static_cast<int64_t>(popularity.Sample(rng));
    if (dst == src) {
      dst = (dst + 1) % vertices;
    }
    graph.out_edges[static_cast<size_t>(src)].push_back(dst);
  }
  return graph;
}

SyntheticPoints MakeClusteredPoints(int64_t count, int dim, int clusters, uint64_t seed) {
  SyntheticPoints points;
  points.dim = dim;
  Rng rng(seed);
  std::vector<std::vector<double>> centers(static_cast<size_t>(clusters));
  for (auto& center : centers) {
    center.resize(static_cast<size_t>(dim));
    for (double& c : center) {
      c = rng.NextDouble(-10.0, 10.0);
    }
  }
  for (int64_t i = 0; i < count; ++i) {
    int c = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(clusters)));
    std::vector<double> value(static_cast<size_t>(dim));
    for (int d = 0; d < dim; ++d) {
      value[static_cast<size_t>(d)] = centers[static_cast<size_t>(c)][static_cast<size_t>(d)] +
                                      rng.NextGaussian();
    }
    points.values.push_back(std::move(value));
    points.true_cluster.push_back(c);
  }
  return points;
}

SyntheticLabeledPoints MakeLabeledPoints(int64_t count, int dim, uint64_t seed) {
  SyntheticLabeledPoints points;
  points.dim = dim;
  Rng rng(seed);
  for (int64_t i = 0; i < count; ++i) {
    double label = rng.NextDouble() < 0.5 ? 0.0 : 1.0;
    double shift = label == 0.0 ? -1.0 : 1.0;
    std::vector<double> feature(static_cast<size_t>(dim));
    for (int d = 0; d < dim; ++d) {
      feature[static_cast<size_t>(d)] = shift + rng.NextGaussian();
    }
    points.features.push_back(std::move(feature));
    points.labels.push_back(label);
  }
  return points;
}

std::vector<SyntheticPost> MakePosts(int64_t count, int64_t users, int topics, uint64_t seed) {
  std::vector<SyntheticPost> posts;
  posts.reserve(static_cast<size_t>(count));
  Rng rng(seed);
  ZipfSampler user_activity(static_cast<uint64_t>(users), 1.2);
  ZipfSampler vocab(2000, 1.05);
  for (int64_t i = 0; i < count; ++i) {
    SyntheticPost post;
    post.user_id = static_cast<int64_t>(user_activity.Sample(rng));
    post.topic = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(topics)));
    post.score = static_cast<int32_t>(rng.NextBounded(100)) - 10;  // some negatives (spam-ish)
    int words = 4 + static_cast<int>(rng.NextBounded(12));
    for (int w = 0; w < words; ++w) {
      if (w > 0) {
        post.text += ' ';
      }
      post.text += "w" + std::to_string(vocab.Sample(rng));
    }
    posts.push_back(std::move(post));
  }
  return posts;
}

std::vector<std::string> MakeTextLines(int64_t lines, int words_per_line, int vocabulary,
                                       uint64_t seed) {
  std::vector<std::string> result;
  result.reserve(static_cast<size_t>(lines));
  Rng rng(seed);
  ZipfSampler vocab(static_cast<uint64_t>(vocabulary), 1.05);
  for (int64_t i = 0; i < lines; ++i) {
    std::string line;
    for (int w = 0; w < words_per_line; ++w) {
      if (w > 0) {
        line += ' ';
      }
      line += "term" + std::to_string(vocab.Sample(rng));
    }
    result.push_back(std::move(line));
  }
  return result;
}

}  // namespace gerenuk
