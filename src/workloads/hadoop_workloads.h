// The Hadoop benchmark programs of §4.2 (Table 2), adapted from the
// StackOverflow-sourced MapReduce programs the paper uses:
//   IUF — Inactive Users Filtering        (per-user activity counts)
//   UAH — Active User Activity Histogram  (histogram over per-user counts)
//   SPF — Spam Posts Filtering            (suspicious posts per user)
//   UED — User Engagement Distribution    (posts per score bucket)
//   CED — Community Expert Detection      (top scorer per topic)
//   IMC — In-Map Combiner                 (word count with combiner)
//   TFC — Term Frequency Calculation      (word count over documents)
// The first five run over StackOverflow-like posts; IMC and TFC over
// Wikipedia-like text.
#ifndef SRC_WORKLOADS_HADOOP_WORKLOADS_H_
#define SRC_WORKLOADS_HADOOP_WORKLOADS_H_

#include <string>
#include <vector>

#include "src/mapreduce/hadoop.h"
#include "src/workloads/datagen.h"
#include "src/workloads/spark_workloads.h"  // for WorkloadResult

namespace gerenuk {

class HadoopWorkloads {
 public:
  explicit HadoopWorkloads(HadoopEngine& engine);

  DatasetPtr MakePostInput(const std::vector<SyntheticPost>& posts);
  DatasetPtr MakeTextInput(const std::vector<std::string>& lines);

  WorkloadResult RunIuf(const DatasetPtr& posts);  // user -> activity count
  WorkloadResult RunUah(const DatasetPtr& posts);  // activity bucket -> users
  WorkloadResult RunSpf(const DatasetPtr& posts);  // user -> spam post count
  WorkloadResult RunUed(const DatasetPtr& posts);  // score bucket -> posts
  WorkloadResult RunCed(const DatasetPtr& posts);  // topic -> best score
  WorkloadResult RunImc(const DatasetPtr& text);   // word count w/ combiner
  WorkloadResult RunTfc(const DatasetPtr& text);   // word count, no combiner

  HadoopEngine& engine() { return engine_; }

  const Klass* post;
  const Klass* doc;
  const Klass* user_count;
  const Klass* topic_score;
  const Klass* word_count;

 private:
  WorkloadResult RunCountJob(const std::string& name, const DatasetPtr& input,
                             const Function* map_fn, bool with_combiner);

  HadoopEngine& engine_;
  SerProgram udfs_;

  const Function* iuf_map_;
  const Function* spf_map_;
  const Function* ued_map_;
  const Function* uc_key_;
  const Function* uc_sum_;
  const Function* ced_map_;
  const Function* ts_key_;
  const Function* ts_max_;
  const Function* tokenize_;
  const Function* wc_key_;
  const Function* wc_sum_;
};

}  // namespace gerenuk

#endif  // SRC_WORKLOADS_HADOOP_WORKLOADS_H_
