#include "src/workloads/hadoop_workloads.h"

#include "src/ir/builder.h"

namespace gerenuk {

HadoopWorkloads::HadoopWorkloads(HadoopEngine& engine) : engine_(engine) {
  KlassRegistry& reg = engine_.heap().klasses();
  const Klass* string_k = engine_.wk().string_klass();
  const Klass* byte_array = engine_.wk().byte_array();

  post = reg.DefineClass("Post", {
                                     {"user", FieldKind::kI64, nullptr, 0},
                                     {"topic", FieldKind::kI32, nullptr, 0},
                                     {"score", FieldKind::kI32, nullptr, 0},
                                     {"text", FieldKind::kRef, string_k, 0},
                                 });
  doc = reg.DefineClass("Doc", {{"text", FieldKind::kRef, string_k, 0}});
  user_count = reg.DefineClass("UserCount", {
                                                {"user", FieldKind::kI64, nullptr, 0},
                                                {"count", FieldKind::kI64, nullptr, 0},
                                            });
  topic_score = reg.DefineClass("TopicScore", {
                                                  {"topic", FieldKind::kI64, nullptr, 0},
                                                  {"score", FieldKind::kI64, nullptr, 0},
                                              });
  word_count = reg.DefineClass("HWordCount", {
                                                 {"word", FieldKind::kRef, string_k, 0},
                                                 {"count", FieldKind::kI64, nullptr, 0},
                                             });
  for (const Klass* top : {post, doc, user_count, topic_score, word_count}) {
    engine_.RegisterDataType(top);
  }
  const Klass* uc_array = reg.Find("UserCount[]");
  const Klass* ts_array = reg.Find("TopicScore[]");
  const Klass* wc_array = reg.Find("HWordCount[]");

  // Emits a single UserCount{key, 1}; shared shape for IUF/SPF/UED maps.
  auto build_single_emit = [&](const char* name,
                               const std::function<void(FunctionBuilder&, int, int&, int&)>&
                                   compute) -> const Function* {
    Function* f = udfs_.AddFunction(name);
    FunctionBuilder b(f);
    int rec = b.Param("post", IrType::Ref(post));
    f->return_type = IrType::Ref(uc_array);
    int key = -1;
    int emit_count = -1;
    compute(b, rec, key, emit_count);
    int arr = b.NewArray(uc_array, emit_count);
    int one_emitted = b.BinOp(BinOpKind::kGt, emit_count, b.ConstI(0));
    b.If(one_emitted, [&] {
      int uc = b.NewObject(user_count);
      b.FieldStore(uc, user_count, "user", key);
      b.FieldStore(uc, user_count, "count", b.ConstI(1));
      b.ArrayStore(arr, b.ConstI(0), uc);
    });
    b.Return(arr);
    b.Done();
    return f;
  };

  // IUF: every post counts toward its author's activity.
  iuf_map_ = build_single_emit("iuf_map", [&](FunctionBuilder& b, int rec, int& key, int& n) {
    key = b.FieldLoad(rec, post, "user");
    n = b.ConstI(1);
  });
  // SPF: emit only suspicious posts (negative score, short body).
  spf_map_ = build_single_emit("spf_map", [&](FunctionBuilder& b, int rec, int& key, int& n) {
    key = b.FieldLoad(rec, post, "user");
    int score = b.FieldLoad(rec, post, "score");
    int text = b.FieldLoad(rec, post, "text");
    int len = b.CallNative("stringLength", {text}, IrType::I64());
    int bad_score = b.BinOp(BinOpKind::kLt, score, b.ConstI(0));
    int shortish = b.BinOp(BinOpKind::kLt, len, b.ConstI(40));
    n = b.BinOp(BinOpKind::kAnd, bad_score, shortish);
  });
  // UED: bucket posts by engagement (score / 10).
  ued_map_ = build_single_emit("ued_map", [&](FunctionBuilder& b, int rec, int& key, int& n) {
    int score = b.FieldLoad(rec, post, "score");
    int shifted = b.BinOp(BinOpKind::kAdd, score, b.ConstI(10));  // scores start at -10
    key = b.BinOp(BinOpKind::kDiv, shifted, b.ConstI(10));
    n = b.ConstI(1);
  });
  {
    Function* f = udfs_.AddFunction("uc_key");
    FunctionBuilder b(f);
    int rec = b.Param("uc", IrType::Ref(user_count));
    f->return_type = IrType::I64();
    b.Return(b.FieldLoad(rec, user_count, "user"));
    b.Done();
    uc_key_ = f;
  }
  {
    Function* f = udfs_.AddFunction("uc_sum");
    FunctionBuilder b(f);
    int a = b.Param("a", IrType::Ref(user_count));
    int c = b.Param("b", IrType::Ref(user_count));
    f->return_type = IrType::Ref(user_count);
    int out = b.NewObject(user_count);
    b.FieldStore(out, user_count, "user", b.FieldLoad(a, user_count, "user"));
    b.FieldStore(out, user_count, "count",
                 b.BinOp(BinOpKind::kAdd, b.FieldLoad(a, user_count, "count"),
                         b.FieldLoad(c, user_count, "count")));
    b.Return(out);
    b.Done();
    uc_sum_ = f;
  }

  // CED: per topic, track the best score seen.
  {
    Function* f = udfs_.AddFunction("ced_map");
    FunctionBuilder b(f);
    int rec = b.Param("post", IrType::Ref(post));
    f->return_type = IrType::Ref(ts_array);
    int arr = b.NewArray(ts_array, b.ConstI(1));
    int ts = b.NewObject(topic_score);
    b.FieldStore(ts, topic_score, "topic", b.FieldLoad(rec, post, "topic"));
    b.FieldStore(ts, topic_score, "score", b.FieldLoad(rec, post, "score"));
    b.ArrayStore(arr, b.ConstI(0), ts);
    b.Return(arr);
    b.Done();
    ced_map_ = f;
  }
  {
    Function* f = udfs_.AddFunction("ts_key");
    FunctionBuilder b(f);
    int rec = b.Param("ts", IrType::Ref(topic_score));
    f->return_type = IrType::I64();
    b.Return(b.FieldLoad(rec, topic_score, "topic"));
    b.Done();
    ts_key_ = f;
  }
  {
    Function* f = udfs_.AddFunction("ts_max");
    FunctionBuilder b(f);
    int a = b.Param("a", IrType::Ref(topic_score));
    int c = b.Param("b", IrType::Ref(topic_score));
    f->return_type = IrType::Ref(topic_score);
    int out = b.NewObject(topic_score);
    b.FieldStore(out, topic_score, "topic", b.FieldLoad(a, topic_score, "topic"));
    b.FieldStore(out, topic_score, "score",
                 b.BinOp(BinOpKind::kMax, b.FieldLoad(a, topic_score, "score"),
                         b.FieldLoad(c, topic_score, "score")));
    b.Return(out);
    b.Done();
    ts_max_ = f;
  }

  // Tokenizer for IMC/TFC over Doc records.
  {
    Function* f = udfs_.AddFunction("h_tokenize");
    FunctionBuilder b(f);
    int rec = b.Param("doc", IrType::Ref(doc));
    f->return_type = IrType::Ref(wc_array);
    int text = b.FieldLoad(rec, doc, "text");
    int chars = b.FieldLoad(text, string_k, "value");
    int len = b.ArrayLength(chars);
    int space = b.ConstI(' ');
    int words = b.Local("words", IrType::I64());
    b.AssignTo(words, b.ConstI(1));
    b.For(len, [&](int i) {
      int c = b.ArrayLoad(chars, i, IrType::I64());
      b.If(b.BinOp(BinOpKind::kEq, c, space), [&] {
        b.AssignTo(words, b.BinOp(BinOpKind::kAdd, words, b.ConstI(1)));
      });
    });
    int arr = b.NewArray(wc_array, words);
    int word_index = b.Local("word_index", IrType::I64());
    int start = b.Local("start", IrType::I64());
    int pos = b.Local("pos", IrType::I64());
    b.AssignTo(word_index, b.ConstI(0));
    b.AssignTo(start, b.ConstI(0));
    b.AssignTo(pos, b.ConstI(0));
    auto emit_word = [&]() {
      int word_len = b.BinOp(BinOpKind::kSub, pos, start);
      int word_chars = b.NewArray(byte_array, word_len);
      b.For(word_len, [&](int k) {
        int src = b.BinOp(BinOpKind::kAdd, start, k);
        b.ArrayStore(word_chars, k, b.ArrayLoad(chars, src, IrType::I64()));
      });
      int word = b.NewObject(string_k);
      b.FieldStore(word, string_k, "value", word_chars);
      int wc = b.NewObject(word_count);
      b.FieldStore(wc, word_count, "word", word);
      b.FieldStore(wc, word_count, "count", b.ConstI(1));
      b.ArrayStore(arr, word_index, wc);
      b.AssignTo(word_index, b.BinOp(BinOpKind::kAdd, word_index, b.ConstI(1)));
    };
    int loop = b.NewLabel();
    int done = b.NewLabel();
    b.PlaceLabel(loop);
    b.Branch(b.BinOp(BinOpKind::kGe, pos, len), done);
    int c = b.ArrayLoad(chars, pos, IrType::I64());
    b.If(b.BinOp(BinOpKind::kEq, c, space), [&] {
      emit_word();
      b.AssignTo(start, b.BinOp(BinOpKind::kAdd, pos, b.ConstI(1)));
    });
    b.AssignTo(pos, b.BinOp(BinOpKind::kAdd, pos, b.ConstI(1)));
    b.Jump(loop);
    b.PlaceLabel(done);
    emit_word();
    b.Return(arr);
    b.Done();
    tokenize_ = f;
  }
  {
    Function* f = udfs_.AddFunction("h_wc_key");
    FunctionBuilder b(f);
    int rec = b.Param("wc", IrType::Ref(word_count));
    f->return_type = IrType::Ref(string_k);
    b.Return(b.FieldLoad(rec, word_count, "word"));
    b.Done();
    wc_key_ = f;
  }
  {
    Function* f = udfs_.AddFunction("h_wc_sum");
    FunctionBuilder b(f);
    int a = b.Param("a", IrType::Ref(word_count));
    int c = b.Param("b", IrType::Ref(word_count));
    f->return_type = IrType::Ref(word_count);
    int out = b.NewObject(word_count);
    b.FieldStore(out, word_count, "word", b.FieldLoad(a, word_count, "word"));
    b.FieldStore(out, word_count, "count",
                 b.BinOp(BinOpKind::kAdd, b.FieldLoad(a, word_count, "count"),
                         b.FieldLoad(c, word_count, "count")));
    b.Return(out);
    b.Done();
    wc_sum_ = f;
  }
}

DatasetPtr HadoopWorkloads::MakePostInput(const std::vector<SyntheticPost>& posts) {
  Heap& heap = engine_.heap();
  return engine_.Source(
      post, static_cast<int64_t>(posts.size()), [&](int64_t i, RootScope& scope) {
        const SyntheticPost& p = posts[static_cast<size_t>(i)];
        size_t text = scope.Push(engine_.wk().AllocString(p.text));
        ObjRef rec = heap.AllocObject(post);
        heap.SetPrim<int64_t>(rec, post->FindField("user")->offset, p.user_id);
        heap.SetPrim<int32_t>(rec, post->FindField("topic")->offset, p.topic);
        heap.SetPrim<int32_t>(rec, post->FindField("score")->offset, p.score);
        heap.SetRef(rec, post->FindField("text")->offset, scope.Get(text));
        return rec;
      });
}

DatasetPtr HadoopWorkloads::MakeTextInput(const std::vector<std::string>& lines) {
  Heap& heap = engine_.heap();
  return engine_.Source(
      doc, static_cast<int64_t>(lines.size()), [&](int64_t i, RootScope& scope) {
        size_t text = scope.Push(engine_.wk().AllocString(lines[static_cast<size_t>(i)]));
        ObjRef rec = heap.AllocObject(doc);
        heap.SetRef(rec, doc->FindField("text")->offset, scope.Get(text));
        return rec;
      });
}

namespace {

WorkloadResult SumI64Outputs(HadoopEngine& engine, const DatasetPtr& out, const Klass* klass,
                             const char* field, const std::string& name) {
  WorkloadResult result;
  result.name = name;
  Heap& heap = engine.heap();
  InlineSerializer serde(heap);
  RootScope scope(heap);
  int offset = klass->FindField(field)->offset;
  for (const auto& part : out->heap_parts) {
    for (ObjRef rec : part) {
      result.checksum += static_cast<double>(heap.GetPrim<int64_t>(rec, offset));
      result.records += 1;
    }
  }
  for (const auto& part : out->native_parts) {
    for (size_t r = 0; r < part.record_count(); ++r) {
      ByteReader reader(reinterpret_cast<const uint8_t*>(part.record_addr(r)),
                        part.record_size(r));
      size_t slot = scope.Push(serde.ReadBody(klass, reader));
      result.checksum += static_cast<double>(heap.GetPrim<int64_t>(scope.Get(slot), offset));
      result.records += 1;
    }
  }
  return result;
}

}  // namespace

WorkloadResult HadoopWorkloads::RunCountJob(const std::string& name, const DatasetPtr& input,
                                            const Function* map_fn, bool with_combiner) {
  engine_.ResetMetrics();
  DatasetPtr out = engine_.RunJob(input, udfs_, map_fn, user_count, KeySpec{uc_key_, false},
                                  uc_sum_, with_combiner ? uc_sum_ : nullptr);
  return SumI64Outputs(engine_, out, user_count, "count", name);
}

WorkloadResult HadoopWorkloads::RunIuf(const DatasetPtr& posts) {
  return RunCountJob("IUF", posts, iuf_map_, false);
}

WorkloadResult HadoopWorkloads::RunUah(const DatasetPtr& posts) {
  // Job 1: per-user activity; Job 2: histogram over the counts.
  engine_.ResetMetrics();
  DatasetPtr per_user = engine_.RunJob(posts, udfs_, iuf_map_, user_count,
                                       KeySpec{uc_key_, false}, uc_sum_);
  // Second job reuses ued-style bucketing but over UserCount records; build
  // the bucket map lazily once.
  static constexpr char kName[] = "uah_bucket_map";
  const Function* bucket_map = udfs_.FindFunction(kName);
  if (bucket_map == nullptr) {
    Function* f = udfs_.AddFunction(kName);
    FunctionBuilder b(f);
    int rec = b.Param("uc", IrType::Ref(user_count));
    f->return_type = IrType::Ref(engine_.heap().klasses().Find("UserCount[]"));
    int arr = b.NewArray(engine_.heap().klasses().Find("UserCount[]"), b.ConstI(1));
    int bucket = b.NewObject(user_count);
    int count = b.FieldLoad(rec, user_count, "count");
    // Histogram bucket: floor(log2(count)) via shift loop.
    int level = b.Local("level", IrType::I64());
    int cur = b.Local("cur", IrType::I64());
    b.AssignTo(level, b.ConstI(0));
    b.AssignTo(cur, count);
    int loop = b.NewLabel();
    int done = b.NewLabel();
    b.PlaceLabel(loop);
    b.Branch(b.BinOp(BinOpKind::kLe, cur, b.ConstI(1)), done);
    b.AssignTo(cur, b.BinOp(BinOpKind::kShr, cur, b.ConstI(1)));
    b.AssignTo(level, b.BinOp(BinOpKind::kAdd, level, b.ConstI(1)));
    b.Jump(loop);
    b.PlaceLabel(done);
    b.FieldStore(bucket, user_count, "user", level);
    b.FieldStore(bucket, user_count, "count", b.ConstI(1));
    b.ArrayStore(arr, b.ConstI(0), bucket);
    b.Return(arr);
    b.Done();
    bucket_map = f;
  }
  DatasetPtr histogram = engine_.RunJob(per_user, udfs_, bucket_map, user_count,
                                        KeySpec{uc_key_, false}, uc_sum_);
  return SumI64Outputs(engine_, histogram, user_count, "count", "UAH");
}

WorkloadResult HadoopWorkloads::RunSpf(const DatasetPtr& posts) {
  return RunCountJob("SPF", posts, spf_map_, false);
}

WorkloadResult HadoopWorkloads::RunUed(const DatasetPtr& posts) {
  return RunCountJob("UED", posts, ued_map_, false);
}

WorkloadResult HadoopWorkloads::RunCed(const DatasetPtr& posts) {
  engine_.ResetMetrics();
  DatasetPtr out = engine_.RunJob(posts, udfs_, ced_map_, topic_score, KeySpec{ts_key_, false},
                                  ts_max_);
  return SumI64Outputs(engine_, out, topic_score, "score", "CED");
}

WorkloadResult HadoopWorkloads::RunImc(const DatasetPtr& text) {
  engine_.ResetMetrics();
  DatasetPtr out = engine_.RunJob(text, udfs_, tokenize_, word_count, KeySpec{wc_key_, true},
                                  wc_sum_, wc_sum_);  // with combiner (the point of IMC)
  return SumI64Outputs(engine_, out, word_count, "count", "IMC");
}

WorkloadResult HadoopWorkloads::RunTfc(const DatasetPtr& text) {
  engine_.ResetMetrics();
  DatasetPtr out = engine_.RunJob(text, udfs_, tokenize_, word_count, KeySpec{wc_key_, true},
                                  wc_sum_);
  return SumI64Outputs(engine_, out, word_count, "count", "TFC");
}

}  // namespace gerenuk
