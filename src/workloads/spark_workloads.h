// The Spark benchmark programs of §4.1 (Table 1): PageRank (PR), KMeans
// (KM), Logistic Regression (LR), Chi Square Selector (CS), Gradient
// Boosting Classification (GB), plus the WordCount used in the Tungsten
// comparison (§4.3). Each workload declares its user data types (the §3.1
// annotations), authors its UDFs in the IR (playing the role of the
// Scala/Java user program), and drives the mini-Spark engine; the same code
// runs in both engine modes.
#ifndef SRC_WORKLOADS_SPARK_WORKLOADS_H_
#define SRC_WORKLOADS_SPARK_WORKLOADS_H_

#include <string>
#include <vector>

#include "src/dataflow/spark.h"
#include "src/workloads/datagen.h"

namespace gerenuk {

struct WorkloadResult {
  std::string name;
  double checksum = 0.0;   // mode-independent correctness fingerprint
  int64_t records = 0;
};

// Declares every Spark workload type on the engine's heap and registers the
// top-level ones with the engine. Construct exactly once per engine.
class SparkWorkloads {
 public:
  explicit SparkWorkloads(SparkEngine& engine);

  // --- the benchmark programs -------------------------------------------
  WorkloadResult RunPageRank(const SyntheticGraph& graph, int iterations);
  // Label propagation (the CC of Figure 5): labels start at the vertex id
  // and each round takes the min over self + incoming neighbor labels.
  WorkloadResult RunConnectedComponents(const SyntheticGraph& graph, int iterations);
  WorkloadResult RunKMeans(const SyntheticPoints& points, int k, int iterations);
  WorkloadResult RunLogisticRegression(const SyntheticLabeledPoints& points, int iterations,
                                       double learning_rate);
  WorkloadResult RunChiSquareSelector(const SyntheticLabeledPoints& points);
  WorkloadResult RunGradientBoosting(const SyntheticLabeledPoints& points, int rounds,
                                     double learning_rate);
  WorkloadResult RunWordCount(const std::vector<std::string>& lines);

  // §4.4's StackOverflow Analytics phase 1: group posts per account; a
  // configurable fraction of accounts overflow their initial capacity and
  // hit the resize violation, aborting their tasks.
  WorkloadResult RunAccountGrouping(const std::vector<SyntheticPost>& posts,
                                    int64_t initial_capacity);

  SparkEngine& engine() { return engine_; }
  const SerProgram& udfs() const { return udfs_; }

  // Exposed types (used by benches and tests).
  const Klass* vertex_links;
  const Klass* rank;
  const Klass* vertex_state;
  const Klass* point;
  const Klass* cluster_stat;
  const Klass* centers;         // broadcast for KMeans
  const Klass* dense_vector;
  const Klass* labeled_point;
  const Klass* sparse_vector;
  const Klass* sparse_point;
  const Klass* grad_vec;
  const Klass* weights;         // broadcast for LR/GB
  const Klass* feat_count;
  const Klass* line;
  const Klass* word_count;
  const Klass* account;

 private:
  void DefineTypes();
  void BuildUdfs();

  SparkEngine& engine_;
  SerProgram udfs_;

  // UDF handles.
  const Function* pr_links_key_;
  const Function* pr_rank_key_;
  const Function* pr_join_;
  const Function* pr_contribs_;
  const Function* pr_sum_;
  const Function* pr_damp_;
  const Function* cc_spread_;  // flatMap: state -> labels for self + neighbors
  const Function* cc_min_;     // reduce: keep the smaller label
  const Function* km_assign_;
  const Function* km_key_;
  const Function* km_merge_;
  const Function* lr_grad_;
  const Function* lr_key_;
  const Function* lr_add_;
  const Function* cs_cells_;
  const Function* cs_key_;
  const Function* cs_add_;
  const Function* gb_stats_;
  const Function* gb_key_;
  const Function* gb_add_;
  const Function* wc_tokenize_;
  const Function* wc_key_;
  const Function* wc_sum_;
  const Function* acct_from_post_;
  const Function* acct_key_;
  const Function* acct_merge_;
};

}  // namespace gerenuk

#endif  // SRC_WORKLOADS_SPARK_WORKLOADS_H_
