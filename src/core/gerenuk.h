// Gerenuk — speculative program transformation for thin computation over
// big native data (reproduction of Navasca et al., SOSP 2019).
//
// Umbrella header: everything a downstream user needs to
//   1. declare data types on a managed heap        (runtime/, serde/)
//   2. author dataflow UDFs in the statement IR    (ir/)
//   3. run the Gerenuk compiler over them          (analysis/, transform/)
//   4. execute speculatively over native buffers   (nativebuf/, exec/)
//   5. or simply run whole jobs on the bundled
//      mini-Spark / mini-Hadoop engines            (dataflow/, mapreduce/)
//   6. or share a pooled engine fleet between many
//      tenants through the service layer           (service/)
//
// The typical application only touches the engine layer:
//
//   EngineConfig config;
//   config.execution.mode = EngineMode::kGerenuk;  // or kBaseline
//   SparkEngine engine(config);
//   engine.RegisterDataType(my_record_klass);      // §3.1 annotations
//   DatasetPtr out = engine.ReduceByKey(input, udfs, pre_ops, key, reduce);
//
// Multi-tenant applications go through EngineService instead of owning an
// engine (DESIGN.md §11):
//
//   EngineService service(service_config);
//   Session session = service.CreateSession("tenant-a");
//   JobResult r = session.Submit(spec).wait();     // plan-cache-hot repeats
//
// Lower layers (Compiler below, SerExecutor, Interpreter) are public for
// programs that embed the transformation directly.
#ifndef SRC_CORE_GERENUK_H_
#define SRC_CORE_GERENUK_H_

#include "src/analysis/layout.h"
#include "src/analysis/ser_analyzer.h"
#include "src/dataflow/spark.h"
#include "src/exec/ser_executor.h"
#include "src/ir/builder.h"
#include "src/mapreduce/hadoop.h"
#include "src/runtime/heap.h"
#include "src/runtime/roots.h"
#include "src/serde/heap_serializer.h"
#include "src/serde/inline_serializer.h"
#include "src/serde/wellknown.h"
#include "src/service/engine_service.h"
#include "src/transform/transformer.h"

namespace gerenuk {

// Convenience bundle over the compiler pipeline of §3: data structure
// analysis (offsets/sizes), SER code analysis (taint + violations), and the
// Algorithm 1 transformation. Holds the ExprPool the transformed program's
// symbolic offsets refer to.
class Compiler {
 public:
  Compiler() = default;

  // §3.1's second annotation: register each top-level data type.
  bool RegisterDataType(const Klass* klass, std::string* error) {
    return layouts_.AnalyzeTopLevel(klass, error);
  }

  // Analyzes and speculatively transforms `program`. The returned program is
  // the fast path; `program` itself is kept unmodified as the slow path.
  TransformResult Compile(const SerProgram& program) {
    SerAnalyzer analyzer(program, layouts_);
    SerAnalysis analysis = analyzer.Run();
    Transformer transformer(program, analysis, layouts_);
    return transformer.Run();
  }

  SerAnalysis Analyze(const SerProgram& program) {
    SerAnalyzer analyzer(program, layouts_);
    return analyzer.Run();
  }

  const DataStructAnalyzer& layouts() const { return layouts_; }
  DataStructAnalyzer& layouts() { return layouts_; }
  const ExprPool& pool() const { return pool_; }

 private:
  ExprPool pool_;
  DataStructAnalyzer layouts_{pool_};
};

}  // namespace gerenuk

#endif  // SRC_CORE_GERENUK_H_
