#include "src/transform/transformer.h"

namespace gerenuk {

TransformResult Transformer::Run() {
  TransformResult result;
  result.transformed = std::make_unique<SerProgram>();

  // Index violations by statement for the case-7 lookup.
  std::map<StmtRef, AbortReason> violation_at;
  for (const Violation& v : analysis_.violations) {
    violation_at.emplace(v.where, v.reason);
  }

  for (size_t f = 0; f < program_.functions.size(); ++f) {
    const Function& original = *program_.functions[f];
    Function* out = result.transformed->AddFunction(original.name);
    out->num_params = original.num_params;
    out->return_type = original.return_type;
    out->vars = original.vars;
    bool touched = false;

    for (size_t i = 0; i < original.body.size(); ++i) {
      StmtRef ref{static_cast<int>(f), static_cast<int>(i)};
      auto violation = violation_at.find(ref);
      if (violation != violation_at.end()) {
        // Case 7: fence the violating statement behind an abort. The
        // original statement is kept after the abort — it is never reached,
        // which the native interpreter enforces.
        Statement abort_stmt;
        abort_stmt.op = Op::kAbort;
        abort_stmt.abort_reason = violation->second;
        out->body.push_back(std::move(abort_stmt));
        out->body.push_back(original.body[i]);
        result.stats.aborts_inserted += 1;
        result.stats.violations_by_reason[static_cast<int>(violation->second)] += 1;
        touched = true;
        continue;
      }
      if (analysis_.data_statements.count(ref) == 0) {
        out->body.push_back(original.body[i]);  // control path: left as-is
        continue;
      }
      bool transformed = false;
      out->body.push_back(TransformStatement(original.body[i], &transformed));
      if (transformed) {
        result.stats.statements_transformed += 1;
        touched = true;
      }
    }
    out->ResolveLabels();
    if (touched) {
      result.stats.functions_transformed += 1;
    }
  }
  result.transformed->body =
      program_.body == nullptr ? nullptr : result.transformed->function(program_.body->id);
  return result;
}

Statement Transformer::TransformStatement(const Statement& s, bool* transformed) {
  Statement out = s;
  *transformed = true;
  switch (s.op) {
    case Op::kDeserialize:  // Case 1
      out.op = Op::kGetAddress;
      break;
    case Op::kSerialize:  // Case 8
      out.op = Op::kGWriteObject;
      break;
    case Op::kAssign:  // Cases 2 & 3: the variable now carries an address
      break;
    case Op::kFieldLoad: {  // Case 5
      const ClassLayout* layout = layouts_.LayoutOf(s.klass);
      GERENUK_CHECK(layout != nullptr) << "no layout for " << s.klass->name();
      const FieldInfo& field = s.klass->field(s.field_index);
      const FieldSlot& slot = layout->fields[s.field_index];
      out.expr_id = slot.offset_expr;
      out.expr_is_const = slot.is_constant;  // Algorithm 1's static-offset case
      out.expr_const_offset = slot.const_offset;
      out.op = field.kind == FieldKind::kRef ? Op::kAddrOfField : Op::kReadNative;
      out.elem_kind = field.kind;
      break;
    }
    case Op::kFieldStore: {  // Case 4 (prim) / construction attach (ref)
      const ClassLayout* layout = layouts_.LayoutOf(s.klass);
      GERENUK_CHECK(layout != nullptr) << "no layout for " << s.klass->name();
      const FieldInfo& field = s.klass->field(s.field_index);
      const FieldSlot& slot = layout->fields[s.field_index];
      out.expr_id = slot.offset_expr;
      out.expr_is_const = slot.is_constant;
      out.expr_const_offset = slot.const_offset;
      out.op = field.kind == FieldKind::kRef ? Op::kAttachField : Op::kWriteNative;
      out.elem_kind = field.kind;
      break;
    }
    case Op::kArrayLoad:
      out.op = s.elem_kind == FieldKind::kRef ? Op::kNativeArrayElemAddr : Op::kNativeArrayLoad;
      break;
    case Op::kArrayStore:
      out.op = s.elem_kind == FieldKind::kRef ? Op::kAttachElement : Op::kNativeArrayStore;
      break;
    case Op::kArrayLength:
      out.op = Op::kNativeArrayLength;
      break;
    case Op::kNewObject:  // Case 6
      out.op = Op::kAppendRecord;
      break;
    case Op::kNewArray:  // Case 6 (variable-size allocation)
      out.op = Op::kAppendArray;
      break;
    case Op::kCall:        // Case 9: callee transformed in place
    case Op::kCallNative:  // intrinsic with a native-byte implementation
      break;
    default:
      *transformed = false;
      break;
  }
  return out;
}

}  // namespace gerenuk
