// The speculative transformer (§3.5, Algorithm 1): rewrites every data-path
// statement found by the SER analyzer into its native-byte equivalent and
// inserts an ABORT immediately before every violation point.
//
// Case map (paper -> this implementation):
//   1  a = readObject()      -> kGetAddress
//   2  a = b                 -> unchanged (variables already carry addresses)
//   3  parameter passing     -> unchanged (calls pass addresses)
//   4  a.f = b   (prim f)    -> kWriteNative with constant or symbolic offset
//   5  b = a.f   (prim f)    -> kReadNative  with constant or symbolic offset
//      b = a.f   (ref f)     -> kAddrOfField  (address of the inlined child)
//   6  a = new A             -> kAppendRecord / kAppendArray
//   7  violation             -> kAbort emitted before the statement
//   8  writeObject(a)        -> kGWriteObject
//   9  n.m(...)              -> kept as a call to the transformed callee
//                               (equivalent to the paper's inline-and-
//                               transform: the callee body is transformed in
//                               place and the call costs nothing semantically)
// plus construction writes (a.f = b where both live in the record being
// built), which compile to kAttachField/kAttachElement handled by the
// runtime's record builders.
//
// The original program is kept untouched — it is the slow path executed on
// re-execution after an abort, exactly as §3.1 prescribes.
#ifndef SRC_TRANSFORM_TRANSFORMER_H_
#define SRC_TRANSFORM_TRANSFORMER_H_

#include <map>
#include <memory>

#include "src/analysis/layout.h"
#include "src/analysis/ser_analyzer.h"
#include "src/ir/ir.h"
#include "src/support/metrics.h"  // TransformStats

namespace gerenuk {

struct TransformResult {
  std::unique_ptr<SerProgram> transformed;
  TransformStats stats;
};

class Transformer {
 public:
  Transformer(const SerProgram& program, const SerAnalysis& analysis,
              const DataStructAnalyzer& layouts)
      : program_(program), analysis_(analysis), layouts_(layouts) {}

  TransformResult Run();

 private:
  Statement TransformStatement(const Statement& s, bool* transformed);

  const SerProgram& program_;
  const SerAnalysis& analysis_;
  const DataStructAnalyzer& layouts_;
};

}  // namespace gerenuk

#endif  // SRC_TRANSFORM_TRANSFORMER_H_
