// An append-only spill file for shuffle blocks. Created lazily (a run that
// never spills never touches the filesystem) via mkstemp and unlinked
// immediately, so the kernel reclaims the space when the last fd closes —
// a crashed driver leaks no spill garbage. Reads use pread, which is safe
// from concurrent reduce tasks and from forked executor children sharing
// the inherited fd (offset-based, no shared file position).
#ifndef SRC_SHUFFLE_SPILL_FILE_H_
#define SRC_SHUFFLE_SPILL_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace gerenuk {

class SpillFile {
 public:
  // `dir` of "" means $TMPDIR (or /tmp). The file itself is created on the
  // first Append.
  explicit SpillFile(std::string dir = "");
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  // Appends `n` bytes; returns the offset they landed at. Driver-side and
  // single-threaded (the shuffle service adds blocks at stage barriers).
  int64_t Append(const uint8_t* data, size_t n);

  // Reads exactly `n` bytes at `offset` (pread; thread- and fork-safe).
  void ReadAt(int64_t offset, uint8_t* dst, size_t n) const;

  // Test hook: flips one stored byte in place, so seal-verification paths
  // can be exercised against genuine on-disk corruption.
  void FlipByteForTest(int64_t offset);

  int64_t size() const { return size_; }
  bool created() const { return fd_ >= 0; }

 private:
  void EnsureOpen();

  std::string dir_;
  int fd_ = -1;
  int64_t size_ = 0;
};

}  // namespace gerenuk

#endif  // SRC_SHUFFLE_SPILL_FILE_H_
