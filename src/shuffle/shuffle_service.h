// The shuffle service: a driver-owned exchange of sealed NativePartition
// blocks between a map-side stage and its consumers, with optional spilling.
//
// Design (see DESIGN.md "Process model & shuffle service"):
//   * Producers never talk to consumers directly. Map output partitions are
//     handed to the driver at the stage barrier (Add, in task-major order,
//     so every spill decision and counter is deterministic for any worker
//     count), and consumers open their bucket on demand (OpenBucket).
//   * Resident by default — spill_threshold_bytes <= 0 keeps every block in
//     memory with zero copies, preserving the seed's zero-serialization
//     shuffle. With a positive threshold, blocks past the resident budget
//     are serialized to wire form, optionally compressed, sealed with
//     FNV-1a over the stored bytes, and appended to an unlinked spill file.
//   * Fetch-on-demand with bounded credit — a consumer acquires credit for
//     the raw bytes of its bucket's spilled blocks before fetching, so the
//     total fetched-and-resident memory across concurrent consumers is
//     bounded by fetch_budget_bytes; a slow consumer therefore cannot OOM
//     the process. An oversized bucket is admitted when the gate is idle,
//     and a grace timeout converts potential hold-and-wait deadlocks (a
//     join holding one side open while fetching the other) into bounded
//     over-admission. Both paths count fetch_backpressure_waits.
//   * Every fetched block is verified against its seal and parsed with the
//     hardened wire parser; corruption of any kind — flipped disk bytes,
//     truncated blocks, malformed frames — surfaces as the quarantinable
//     TaskError{kCorruptInput}, never as a crash.
//   * A bucket read touching two or more spilled blocks is an external
//     merge of spilled runs (blocks replay in producer order, which is how
//     the resident path iterates too); spill_merges counts them.
#ifndef SRC_SHUFFLE_SHUFFLE_SERVICE_H_
#define SRC_SHUFFLE_SHUFFLE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/nativebuf/native_buffer.h"
#include "src/shuffle/spill_file.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace gerenuk {

struct ShuffleConfig {
  // <= 0: never spill (every block stays resident — the seed behavior).
  // > 0: blocks beyond this many resident bytes spill to disk.
  int64_t spill_threshold_bytes = 0;
  bool compress = true;  // LZ-compress spilled blocks (stored fallback)
  // Credit budget over the raw (decompressed) bytes of concurrently open
  // spilled-bucket fetches. <= 0 disables backpressure.
  int64_t fetch_budget_bytes = 16ll << 20;
  // Liveness escape hatch: a fetch blocked on credit proceeds over budget
  // after this many ms instead of risking hold-and-wait deadlock. <= 0
  // waits forever.
  int64_t backpressure_grace_ms = 50;
  std::string spill_dir;  // "" = $TMPDIR or /tmp
  MemoryTracker* tracker = nullptr;
};

// Bounded-credit gate over in-flight fetched bytes.
class CreditGate {
 public:
  CreditGate(int64_t budget_bytes, int64_t grace_ms)
      : budget_(budget_bytes), grace_ms_(grace_ms) {}

  // Blocks until `bytes` fits (or the gate is idle — an oversized request
  // must not wait forever — or the grace period elapses). Returns true if
  // the caller waited at all.
  bool Acquire(int64_t bytes);
  void Release(int64_t bytes);

  int64_t inflight() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int64_t budget_;
  int64_t grace_ms_;
  int64_t inflight_ = 0;
};

// One opened bucket: stable views over resident blocks plus ownership of
// the blocks fetched from disk, holding their fetch credit until destroyed.
// Record addresses obtained through parts() / ForEachRecord stay valid for
// the reader's lifetime (a join holds the build side's reader open while
// streaming the probe side).
class BucketReader {
 public:
  BucketReader() = default;
  BucketReader(BucketReader&& other) noexcept;
  BucketReader& operator=(BucketReader&&) = delete;
  BucketReader(const BucketReader&) = delete;
  BucketReader& operator=(const BucketReader&) = delete;
  ~BucketReader();

  // Partitions of this bucket, in producer order.
  const std::vector<const NativePartition*>& parts() const { return parts_; }

  // Every record of the bucket, in producer order then record order —
  // byte-identical to iterating the resident blocks directly.
  void ForEachRecord(const std::function<void(int64_t addr, uint32_t size)>& fn) const;

 private:
  friend class ShuffleRun;
  std::vector<const NativePartition*> parts_;
  std::vector<NativePartition> owned_;  // fetched blocks (reserved, stable)
  CreditGate* gate_ = nullptr;
  int64_t credit_bytes_ = 0;
};

// One shuffle exchange: `producers` map tasks each contributing up to one
// block per bucket, `buckets` reduce-side consumers. Add is driver-side and
// single-threaded; OpenBucket is safe from concurrent reduce tasks (and
// from forked executor children sharing the inherited spill-file fd).
class ShuffleRun {
 public:
  ShuffleRun(int producers, int buckets, const ShuffleConfig& config);

  // Takes ownership of one map-output partition. Must be called at the
  // stage barrier in task-major order; spill decisions depend on the
  // cumulative resident size, so the order is part of the determinism
  // contract. Spill counters land in `stats` (the driver's); `sink`, when
  // non-null, gets a kSpillBytes counter event per spilled block.
  void Add(int producer, int bucket, NativePartition&& part, EngineStats* stats,
           TraceSink* sink = nullptr);

  // Opens a bucket for reading: acquires fetch credit, fetches + verifies +
  // parses any spilled blocks, and returns a reader holding it all. Fetch
  // counters land in `stats` (the calling task's, so process-mode children
  // ship them home over the wire). Throws TaskError{kCorruptInput} when a
  // spilled block fails its seal, fails to decompress, or fails to parse.
  BucketReader OpenBucket(int bucket, EngineStats* stats, TraceSink* sink = nullptr) const;

  // Convenience: OpenBucket + ForEachRecord, for consumers that stream.
  void ForEachRecordInBucket(int bucket, EngineStats* stats, TraceSink* sink,
                             const std::function<void(int64_t addr, uint32_t size)>& fn) const;

  int num_buckets() const { return static_cast<int>(bucket_blocks_.size()); }
  int64_t resident_bytes() const { return resident_bytes_; }
  int64_t spilled_blocks() const { return spilled_blocks_; }

  // Test hook: flips one stored byte of the `ordinal`-th spilled block (in
  // bucket-major order), so corruption tests hit genuine on-disk rot.
  void CorruptStoredByteForTest(int64_t ordinal);

 private:
  struct Block {
    int producer = 0;
    bool spilled = false;
    NativePartition resident;     // valid when !spilled
    int64_t offset = 0;           // spill-file offset of the stored bytes
    uint32_t stored_size = 0;     // on-disk size (post-compression)
    uint32_t raw_size = 0;        // wire size (pre-compression)
    uint64_t seal = 0;            // FNV-1a over the stored bytes
  };

  ShuffleConfig config_;
  std::vector<std::vector<Block>> bucket_blocks_;  // [bucket] in producer order
  int64_t resident_bytes_ = 0;
  int64_t spilled_blocks_ = 0;
  mutable SpillFile file_;
  mutable CreditGate gate_;
};

}  // namespace gerenuk

#endif  // SRC_SHUFFLE_SHUFFLE_SERVICE_H_
