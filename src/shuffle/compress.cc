#include "src/shuffle/compress.h"

#include <cstring>

namespace gerenuk {

namespace {

constexpr uint8_t kCodecStored = 0;
constexpr uint8_t kCodecLz = 1;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;

uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t HashSeq(uint32_t v) { return (v * 2654435761u) >> (32 - kHashBits); }

// Length-extension bytes for a nibble that saturated at 15.
void WriteLenExt(std::vector<uint8_t>* out, size_t extra) {
  while (extra >= 255) {
    out->push_back(255);
    extra -= 255;
  }
  out->push_back(static_cast<uint8_t>(extra));
}

void EmitSequence(const uint8_t* src, size_t lit_start, size_t lit_len, size_t offset,
                  size_t match_len, std::vector<uint8_t>* out) {
  const uint8_t lit_code = lit_len < 15 ? static_cast<uint8_t>(lit_len) : 15;
  const size_t match_code_val = match_len - 4;
  const uint8_t match_code = match_code_val < 15 ? static_cast<uint8_t>(match_code_val) : 15;
  out->push_back(static_cast<uint8_t>((lit_code << 4) | match_code));
  if (lit_code == 15) {
    WriteLenExt(out, lit_len - 15);
  }
  out->insert(out->end(), src + lit_start, src + lit_start + lit_len);
  out->push_back(static_cast<uint8_t>(offset & 0xff));
  out->push_back(static_cast<uint8_t>(offset >> 8));
  if (match_code == 15) {
    WriteLenExt(out, match_code_val - 15);
  }
}

void EmitFinalLiterals(const uint8_t* src, size_t lit_start, size_t lit_len,
                       std::vector<uint8_t>* out) {
  if (lit_len == 0) {
    return;  // the stream may end right after a match
  }
  const uint8_t lit_code = lit_len < 15 ? static_cast<uint8_t>(lit_len) : 15;
  out->push_back(static_cast<uint8_t>(lit_code << 4));
  if (lit_code == 15) {
    WriteLenExt(out, lit_len - 15);
  }
  out->insert(out->end(), src + lit_start, src + lit_start + lit_len);
}

// Greedy single-pass matcher over a 2^13-entry hash table of 4-byte
// sequences. Quality is deliberately modest; spilled shuffle blocks are
// rendered records full of repeated layouts, which this catches well.
void LzCompress(const uint8_t* src, size_t n, std::vector<uint8_t>* out) {
  std::vector<int32_t> table(size_t{1} << kHashBits, -1);
  size_t ip = 0;
  size_t anchor = 0;
  // Stop match-finding near the tail; the remainder ships as literals.
  const size_t find_limit = n >= 12 ? n - 12 : 0;
  while (ip < find_limit) {
    const uint32_t seq = Load32(src + ip);
    const uint32_t h = HashSeq(seq);
    const int32_t cand = table[h];
    table[h] = static_cast<int32_t>(ip);
    if (cand >= 0 && ip - static_cast<size_t>(cand) <= kMaxOffset &&
        Load32(src + cand) == seq) {
      size_t match_len = 4;
      while (ip + match_len < n && src[static_cast<size_t>(cand) + match_len] == src[ip + match_len]) {
        ++match_len;
      }
      EmitSequence(src, anchor, ip - anchor, ip - static_cast<size_t>(cand), match_len, out);
      ip += match_len;
      anchor = ip;
    } else {
      ++ip;
    }
  }
  EmitFinalLiterals(src, anchor, n - anchor, out);
}

}  // namespace

void CompressBlock(const uint8_t* src, size_t n, ByteBuffer* out) {
  if (n >= 16) {
    std::vector<uint8_t> lz;
    lz.reserve(n);
    LzCompress(src, n, &lz);
    if (lz.size() < n) {
      out->WriteU8(kCodecLz);
      out->WriteBytes(lz.data(), lz.size());
      return;
    }
  }
  out->WriteU8(kCodecStored);
  out->WriteBytes(src, n);
}

bool DecompressBlock(const uint8_t* src, size_t n, size_t raw_size,
                     std::vector<uint8_t>* dst) {
  dst->clear();
  if (n < 1) {
    return false;
  }
  const uint8_t codec = src[0];
  const uint8_t* ip = src + 1;
  const uint8_t* const end = src + n;

  if (codec == kCodecStored) {
    if (static_cast<size_t>(end - ip) != raw_size) {
      return false;
    }
    dst->assign(ip, end);
    return true;
  }
  if (codec != kCodecLz) {
    return false;
  }

  dst->reserve(raw_size);
  // Reads a nibble's extension bytes; -1 signals a truncated stream. The
  // accumulated length cannot overflow: each extension byte adds <= 255 and
  // the stream is finite.
  auto read_len = [&ip, end](uint8_t nibble) -> int64_t {
    int64_t len = nibble;
    if (nibble == 15) {
      uint8_t b;
      do {
        if (ip >= end) {
          return -1;
        }
        b = *ip++;
        len += b;
      } while (b == 255);
    }
    return len;
  };

  while (ip < end) {
    const uint8_t token = *ip++;
    const int64_t lit_len = read_len(token >> 4);
    if (lit_len < 0 || static_cast<int64_t>(end - ip) < lit_len ||
        dst->size() + static_cast<size_t>(lit_len) > raw_size) {
      return false;
    }
    dst->insert(dst->end(), ip, ip + lit_len);
    ip += lit_len;
    if (ip == end) {
      break;  // final literal-only sequence
    }
    if (end - ip < 2) {
      return false;
    }
    const size_t offset = static_cast<size_t>(ip[0]) | (static_cast<size_t>(ip[1]) << 8);
    ip += 2;
    if (offset == 0 || offset > dst->size()) {
      return false;
    }
    int64_t match_len = read_len(token & 0x0f);
    if (match_len < 0) {
      return false;
    }
    match_len += 4;
    if (dst->size() + static_cast<size_t>(match_len) > raw_size) {
      return false;
    }
    // Byte-at-a-time so overlapping matches (offset < length, the RLE case)
    // replicate correctly.
    size_t pos = dst->size() - offset;
    for (int64_t i = 0; i < match_len; ++i) {
      dst->push_back((*dst)[pos + static_cast<size_t>(i)]);
    }
  }
  return dst->size() == raw_size;
}

}  // namespace gerenuk
