#include "src/shuffle/spill_file.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "src/support/logging.h"

namespace gerenuk {

SpillFile::SpillFile(std::string dir) : dir_(std::move(dir)) {}

SpillFile::~SpillFile() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void SpillFile::EnsureOpen() {
  if (fd_ >= 0) {
    return;
  }
  std::string dir = dir_;
  if (dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  }
  std::string tmpl = dir + "/gerenuk-spill-XXXXXX";
  std::vector<char> path(tmpl.begin(), tmpl.end());
  path.push_back('\0');
  fd_ = ::mkstemp(path.data());
  GERENUK_CHECK(fd_ >= 0) << "mkstemp(" << tmpl << ") failed: " << std::strerror(errno);
  // Unlink immediately: the fd keeps the data alive, the namespace stays
  // clean, and any crash reclaims the space automatically.
  ::unlink(path.data());
}

int64_t SpillFile::Append(const uint8_t* data, size_t n) {
  EnsureOpen();
  const int64_t offset = size_;
  size_t written = 0;
  while (written < n) {
    ssize_t rc = ::pwrite(fd_, data + written, n - written,
                          static_cast<off_t>(offset + static_cast<int64_t>(written)));
    if (rc < 0 && errno == EINTR) {
      continue;
    }
    GERENUK_CHECK(rc > 0) << "spill write failed: " << std::strerror(errno);
    written += static_cast<size_t>(rc);
  }
  size_ += static_cast<int64_t>(n);
  return offset;
}

void SpillFile::ReadAt(int64_t offset, uint8_t* dst, size_t n) const {
  GERENUK_CHECK(fd_ >= 0) << "ReadAt on a spill file that was never written";
  size_t done = 0;
  while (done < n) {
    ssize_t rc = ::pread(fd_, dst + done, n - done,
                         static_cast<off_t>(offset + static_cast<int64_t>(done)));
    if (rc < 0 && errno == EINTR) {
      continue;
    }
    GERENUK_CHECK(rc > 0) << "spill read failed at offset " << offset << ": "
                          << (rc == 0 ? "unexpected EOF" : std::strerror(errno));
    done += static_cast<size_t>(rc);
  }
}

void SpillFile::FlipByteForTest(int64_t offset) {
  GERENUK_CHECK(fd_ >= 0 && offset < size_);
  uint8_t b = 0;
  ReadAt(offset, &b, 1);
  b ^= 0x5a;
  ssize_t rc = ::pwrite(fd_, &b, 1, static_cast<off_t>(offset));
  GERENUK_CHECK(rc == 1) << "spill corrupt-for-test write failed: " << std::strerror(errno);
}

}  // namespace gerenuk
