// Block compression for spilled shuffle blocks: a small LZ77 codec with an
// LZ4-flavored encoding (token byte with literal/match nibbles, 15 =
// extension bytes, u16 little-endian match offsets, minimum match 4), plus a
// stored-block fallback so incompressible data costs one byte of overhead.
//
// The repo deliberately carries its own codec instead of depending on an
// external library: the container bakes in no compression dependency, and
// the decoder must be strictly bounds-checked anyway — spilled bytes are
// wire bytes and malformed input has to fail closed, never overrun.
//
// Stored form:      [0x00][raw bytes]
// Compressed form:  [0x01][sequence]*
//   sequence = [token: lit_len<<4 | match_code]
//              [lit_len extension bytes, if nibble == 15: 255* + remainder]
//              [literals]
//              -- stream may end here (final literal-only sequence) --
//              [offset: u16 LE, 1..65535, into the decoded output]
//              [match_code extension bytes, same scheme; match length =
//               match_code + 4]
#ifndef SRC_SHUFFLE_COMPRESS_H_
#define SRC_SHUFFLE_COMPRESS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/support/bytes.h"

namespace gerenuk {

// Appends the encoded block (leading codec byte + payload) to `out`.
// Falls back to the stored form whenever compression does not shrink the
// input, so the stored size never exceeds raw size + 1.
void CompressBlock(const uint8_t* src, size_t n, ByteBuffer* out);

// Decodes a block produced by CompressBlock into exactly `raw_size` bytes.
// Returns false — leaving `dst` in an unspecified but owned state — on any
// structural violation: unknown codec byte, truncated stream, offset past
// the decoded prefix, or a decoded size other than `raw_size`. Never reads
// or writes out of bounds.
bool DecompressBlock(const uint8_t* src, size_t n, size_t raw_size,
                     std::vector<uint8_t>* dst);

}  // namespace gerenuk

#endif  // SRC_SHUFFLE_COMPRESS_H_
