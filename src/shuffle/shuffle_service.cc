#include "src/shuffle/shuffle_service.h"

#include <chrono>
#include <utility>

#include "src/exec/fault.h"
#include "src/shuffle/compress.h"
#include "src/support/fnv.h"
#include "src/support/logging.h"

namespace gerenuk {

bool CreditGate::Acquire(int64_t bytes) {
  if (budget_ <= 0 || bytes <= 0) {
    return false;
  }
  std::unique_lock<std::mutex> lock(mu_);
  bool waited = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(grace_ms_);
  // An oversized request (bytes > budget_) is admitted once the gate is
  // idle — waiting for credit that can never exist would deadlock.
  while (inflight_ > 0 && inflight_ + bytes > budget_) {
    waited = true;
    if (grace_ms_ <= 0) {
      cv_.wait(lock);
    } else if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      break;  // grace elapsed: admit over budget rather than risk deadlock
    }
  }
  inflight_ += bytes;
  return waited;
}

void CreditGate::Release(int64_t bytes) {
  if (budget_ <= 0 || bytes <= 0) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_ -= bytes;
  }
  cv_.notify_all();
}

int64_t CreditGate::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

BucketReader::BucketReader(BucketReader&& other) noexcept
    : parts_(std::move(other.parts_)),
      owned_(std::move(other.owned_)),
      gate_(other.gate_),
      credit_bytes_(other.credit_bytes_) {
  // parts_ entries pointing into owned_ stay valid: the vector move
  // transfers the element storage without relocating elements.
  other.gate_ = nullptr;
  other.credit_bytes_ = 0;
}

BucketReader::~BucketReader() {
  if (gate_ != nullptr) {
    gate_->Release(credit_bytes_);
  }
}

void BucketReader::ForEachRecord(
    const std::function<void(int64_t addr, uint32_t size)>& fn) const {
  for (const NativePartition* part : parts_) {
    for (size_t r = 0; r < part->record_count(); ++r) {
      fn(part->record_addr(r), part->record_size(r));
    }
  }
}

ShuffleRun::ShuffleRun(int producers, int buckets, const ShuffleConfig& config)
    : config_(config),
      bucket_blocks_(static_cast<size_t>(buckets)),
      file_(config.spill_dir),
      gate_(config.fetch_budget_bytes, config.backpressure_grace_ms) {
  (void)producers;  // sizing hint only; blocks arrive via Add
  for (auto& blocks : bucket_blocks_) {
    blocks.reserve(static_cast<size_t>(producers));
  }
}

void ShuffleRun::Add(int producer, int bucket, NativePartition&& part, EngineStats* stats,
                     TraceSink* sink) {
  GERENUK_CHECK(bucket >= 0 && bucket < num_buckets());
  Block block;
  block.producer = producer;
  const int64_t part_bytes = part.bytes_used();
  const bool spill = config_.spill_threshold_bytes > 0 &&
                     resident_bytes_ + part_bytes > config_.spill_threshold_bytes;
  if (!spill) {
    block.resident = std::move(part);
    resident_bytes_ += part_bytes;
  } else {
    ByteBuffer wire;
    part.SerializeTo(wire);
    ByteBuffer stored;
    if (config_.compress) {
      CompressBlock(wire.data(), wire.size(), &stored);
    } else {
      stored.WriteU8(0);  // stored-codec frame; DecompressBlock handles both
      stored.WriteBytes(wire.data(), wire.size());
    }
    block.spilled = true;
    block.raw_size = static_cast<uint32_t>(wire.size());
    block.stored_size = static_cast<uint32_t>(stored.size());
    block.seal = Fnv1aDigest(stored.data(), stored.size());
    block.offset = file_.Append(stored.data(), stored.size());
    spilled_blocks_ += 1;
    if (stats != nullptr) {
      stats->spill_blocks += 1;
      stats->spill_bytes_raw += static_cast<int64_t>(wire.size());
      stats->spill_bytes_stored += static_cast<int64_t>(stored.size());
    }
    if (sink != nullptr) {
      sink->Counter(TraceEventType::kSpillBytes, "spill_bytes",
                    static_cast<int64_t>(stored.size()));
    }
    part.Release();
  }
  bucket_blocks_[static_cast<size_t>(bucket)].push_back(std::move(block));
}

BucketReader ShuffleRun::OpenBucket(int bucket, EngineStats* stats, TraceSink* sink) const {
  GERENUK_CHECK(bucket >= 0 && bucket < num_buckets());
  const std::vector<Block>& blocks = bucket_blocks_[static_cast<size_t>(bucket)];
  int64_t fetch_raw_bytes = 0;
  size_t spilled = 0;
  for (const Block& block : blocks) {
    if (block.spilled) {
      fetch_raw_bytes += block.raw_size;
      ++spilled;
    }
  }

  BucketReader reader;
  reader.parts_.reserve(blocks.size());
  if (spilled > 0) {
    // One acquisition for the whole bucket: a reader never waits on itself,
    // so a bucket larger than the budget still makes progress.
    if (gate_.Acquire(fetch_raw_bytes) && stats != nullptr) {
      stats->fetch_backpressure_waits += 1;
    }
    reader.gate_ = &gate_;
    reader.credit_bytes_ = fetch_raw_bytes;
    reader.owned_.reserve(spilled);  // parts_ takes stable element addresses
    if (spilled >= 2 && stats != nullptr) {
      stats->spill_merges += 1;  // external merge of >= 2 spilled runs
    }
  }

  std::vector<uint8_t> stored;
  std::vector<uint8_t> raw;
  for (const Block& block : blocks) {
    if (!block.spilled) {
      reader.parts_.push_back(&block.resident);
      continue;
    }
    stored.resize(block.stored_size);
    file_.ReadAt(block.offset, stored.data(), stored.size());
    if (Fnv1aDigest(stored.data(), stored.size()) != block.seal) {
      throw TaskError(TaskErrorKind::kCorruptInput, -1, 0, 0,
                      "spilled shuffle block failed its integrity seal (bucket " +
                          std::to_string(bucket) + ", producer " +
                          std::to_string(block.producer) + ")");
    }
    if (!DecompressBlock(stored.data(), stored.size(), block.raw_size, &raw)) {
      throw TaskError(TaskErrorKind::kCorruptInput, -1, 0, 0,
                      "spilled shuffle block failed to decompress (bucket " +
                          std::to_string(bucket) + ", producer " +
                          std::to_string(block.producer) + ")");
    }
    ByteReader in(raw.data(), raw.size());
    try {
      reader.owned_.push_back(NativePartition::Parse(in, config_.tracker));
    } catch (const WireFormatError& e) {
      throw TaskError(TaskErrorKind::kCorruptInput, -1, 0, 0,
                      "spilled shuffle block wire bytes malformed (bucket " +
                          std::to_string(bucket) + ", producer " +
                          std::to_string(block.producer) + "): " + e.what());
    }
    reader.parts_.push_back(&reader.owned_.back());
    if (stats != nullptr) {
      stats->shuffle_fetches += 1;
    }
    if (sink != nullptr) {
      sink->Counter(TraceEventType::kFetchBytes, "fetch_bytes",
                    static_cast<int64_t>(block.raw_size));
    }
  }
  return reader;
}

void ShuffleRun::ForEachRecordInBucket(
    int bucket, EngineStats* stats, TraceSink* sink,
    const std::function<void(int64_t addr, uint32_t size)>& fn) const {
  OpenBucket(bucket, stats, sink).ForEachRecord(fn);
}

void ShuffleRun::CorruptStoredByteForTest(int64_t ordinal) {
  int64_t seen = 0;
  for (const auto& blocks : bucket_blocks_) {
    for (const Block& block : blocks) {
      if (block.spilled && seen++ == ordinal) {
        file_.FlipByteForTest(block.offset);
        return;
      }
    }
  }
  GERENUK_CHECK(false) << "no spilled block with ordinal " << ordinal;
}

}  // namespace gerenuk
