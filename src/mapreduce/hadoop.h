// A miniature Hadoop MapReduce: the second system the paper transforms.
//
// A job runs map tasks over input splits; each map emits (key, value)
// records into a sort buffer that is partitioned by reducer, sorted by key,
// optionally run through a combiner, and spilled to IFile-like segments.
// Reducers merge their partition's runs from every segment, group equal
// keys, and fold each group with the reduce function.
//
// The two engine modes mirror the paper's comparison:
//   * kBaseline — records are heap objects; the sort buffer and segments
//     hold *serialized* bytes (Hadoop's map-output buffer design, which is
//     why the paper observes small ser/deser savings for Hadoop); the
//     combiner and reducer deserialize values before folding.
//   * kGerenuk  — records are inlined native bytes end to end; sorting and
//     merging move byte ranges; the combiner and reducer run transformed
//     code over the buffers. The deserialization point the paper names
//     (WritableDeserializer.deserialize in ReduceContextImpl) simply
//     disappears.
#ifndef SRC_MAPREDUCE_HADOOP_H_
#define SRC_MAPREDUCE_HADOOP_H_

#include <memory>
#include <vector>

#include "src/dataflow/dataset.h"
#include "src/dataflow/engine_config.h"
#include "src/exec/ser_executor.h"
#include "src/exec/task_scheduler.h"
#include "src/serde/heap_serializer.h"

namespace gerenuk {

// The mini-Hadoop composes the shared knobs (`engine`) with its own;
// `engine.execution.num_partitions` is the number of map tasks (input
// splits). Composition — not inheritance — so brace-init stays unambiguous
// and the grouped sub-structs of EngineConfig nest cleanly.
struct HadoopConfig {
  EngineConfig engine;
  int num_reducers = 2;
  size_t sort_buffer_bytes = 1u << 20;  // spill threshold
  // Yak comparison (Figure 9): with gc == GcKind::kRegion, wrap every map
  // and reduce task in an epoch (the paper's epoch_start in setup() /
  // epoch_end in cleanup() annotation). Baseline mode only.
  bool yak_epochs = false;

  // Checks the engine knobs plus the Hadoop-specific ones.
  std::string Validate() const {
    if (num_reducers < 1) {
      return "num_reducers must be >= 1 (got " + std::to_string(num_reducers) + ")";
    }
    if (sort_buffer_bytes == 0) {
      return "sort_buffer_bytes must be non-zero: every emit would spill";
    }
    return engine.Validate();
  }
};

class HadoopEngine {
 public:
  explicit HadoopEngine(const HadoopConfig& config);
  ~HadoopEngine();

  Heap& heap() { return *heap_; }
  WellKnown& wk() { return *wk_; }
  EngineMode mode() const { return config_.engine.execution.mode; }

  void RegisterDataType(const Klass* klass);
  const DataStructAnalyzer& layouts() const { return layouts_; }

  DatasetPtr Source(const Klass* klass, int64_t count,
                    const std::function<ObjRef(int64_t, RootScope&)>& make);

  // Runs one MapReduce job.
  //   map_fn      — flatMap-style: input record -> out_klass[] (the emits)
  //   key         — key extraction over out_klass records
  //   reduce_fn   — pairwise fold: (acc, value) -> merged (same klass)
  //   combiner_fn — optional map-side combiner, same signature as reduce_fn
  DatasetPtr RunJob(const DatasetPtr& input, const SerProgram& udfs, const Function* map_fn,
                    const Klass* out_klass, const KeySpec& key, const Function* reduce_fn,
                    const Function* combiner_fn = nullptr);

  const EngineStats& stats() const { return stats_; }
  int64_t peak_memory_bytes() const { return memory_.peak_bytes(); }
  int num_workers() const { return scheduler_->num_workers(); }
  void ResetMetrics();

  // The engine's event timeline (null when config.trace is off); complete
  // after RunJob returns. Export with TraceExporter.
  Trace* trace() { return trace_.get(); }
  // Unified metrics snapshot: every EngineStats counter, phase times,
  // plan-op profile totals, and (when tracing) the trace-derived histograms.
  MetricsRegistry metrics() const;

  // Fault injection: ordinals are assigned in submission order (all map
  // tasks of a job, then all reduce tasks), starting at next_task_ordinal().
  FaultPlan& fault_plan() { return fault_plan_; }
  int64_t next_task_ordinal() const { return task_seq_; }

  // Driver-side speculation governor, shared semantics with SparkEngine
  // (see src/exec/fault.h): both the map and reduce phases consult it.
  const SpeculationGovernor& governor() const { return governor_; }

  // Service-mode hooks, shared semantics with SparkEngine: install only
  // while the engine is idle.
  void set_plan_cache(PlanCache* cache) { plan_cache_ = cache; }
  PlanCache* plan_cache() const { return plan_cache_; }
  void set_speculation_oracle(SpeculationOracle oracle) { oracle_ = std::move(oracle); }
  // Job-level cooperative cancellation, shared semantics with SparkEngine:
  // probed at every map/reduce task-attempt boundary.
  void set_cancel_check(CancelCheck check) { scheduler_->set_cancel_check(std::move(check)); }

 private:
  // The plan-compiler knobs derived from EngineConfig::execution; must agree
  // with VecSignatureOf so the cache key always matches the compiled plan.
  PlanOptions plan_options() const {
    PlanOptions options;
    options.vectorize = config_.engine.execution.vectorize;
    options.vector_batch_size = config_.engine.execution.vector_batch_size;
    options.vec_bail_after_strips = config_.engine.execution.vec_bail_after_strips;
    return options;
  }

  // One spilled, sorted map-output segment. Per reducer partition: records
  // in key order. Baseline keeps Kryo bytes; Gerenuk keeps native records.
  struct Segment {
    // Per partition, parallel arrays sorted by key.
    std::vector<std::vector<ShuffleKey>> keys;
    std::vector<ByteBuffer> wire;                 // kBaseline: concatenated records
    std::vector<std::vector<size_t>> wire_offsets;
    std::vector<NativePartition> native;          // kGerenuk
    explicit Segment(int partitions, MemoryTracker* tracker, EngineMode mode);
  };

  int64_t ClaimTaskOrdinals(int n) {
    int64_t base = task_seq_;
    task_seq_ += n;
    return base;
  }

  HadoopConfig config_;
  std::unique_ptr<Heap> heap_;
  std::unique_ptr<WellKnown> wk_;
  ExprPool pool_;
  DataStructAnalyzer layouts_{pool_};
  HeapSerializer kryo_;
  InlineSerializer inline_serde_;
  MemoryTracker memory_;
  std::unique_ptr<TaskScheduler> scheduler_;
  std::unique_ptr<Trace> trace_;  // allocated only when config.trace
  EngineStats stats_;
  FaultPlan fault_plan_;
  SpeculationGovernor governor_;
  SpeculationOracle oracle_;
  PlanCache* plan_cache_ = nullptr;  // not owned; null outside service mode
  int64_t task_seq_ = 0;

  // Driver-side sink for phase spans (null when tracing is off).
  TraceSink* DriverSink() const { return trace_ != nullptr ? trace_->driver() : nullptr; }

  bool ShouldSpeculateFor(uint64_t signature_hash) const {
    if (!governor_.ShouldSpeculate()) {
      return false;
    }
    if (oracle_.should_speculate != nullptr && !oracle_.should_speculate(signature_hash)) {
      return false;
    }
    return true;
  }

  void ObserveSpeculation(uint64_t signature_hash, int tasks, int aborts_delta) {
    if (governor_.Observe(tasks, aborts_delta)) {
      stats_.governor_flips += 1;
    }
    if (oracle_.observe != nullptr) {
      oracle_.observe(signature_hash, tasks, aborts_delta);
    }
  }
};

}  // namespace gerenuk

#endif  // SRC_MAPREDUCE_HADOOP_H_
