#include "src/mapreduce/hadoop.h"

#include <algorithm>
#include <numeric>
#include <string>

namespace gerenuk {

namespace {

// One map-side sort-buffer entry: where the serialized/native record lives
// and how it routes.
struct BufferEntry {
  int part;
  ShuffleKey key;
  size_t offset;  // kBaseline: offset into the task's wire buffer
  size_t length;
  int64_t addr;   // kGerenuk: committed record address in the task region
  uint32_t size;
};

bool EntryOrder(const BufferEntry& a, const BufferEntry& b) {
  if (a.part != b.part) {
    return a.part < b.part;
  }
  return a.key < b.key;
}

// One validation gate for the whole config, crossed before any member that
// consumes a knob (the heap, the scheduler) is built.
const HadoopConfig& ValidatedHadoopConfig(const HadoopConfig& config) {
  const std::string error = config.Validate();
  GERENUK_CHECK(error.empty()) << "invalid HadoopConfig: " << error;
  return config;
}

}  // namespace

HadoopEngine::Segment::Segment(int partitions, MemoryTracker* tracker, EngineMode mode) {
  keys.resize(static_cast<size_t>(partitions));
  if (mode == EngineMode::kBaseline) {
    wire.resize(static_cast<size_t>(partitions));
    wire_offsets.resize(static_cast<size_t>(partitions));
  } else {
    native.reserve(static_cast<size_t>(partitions));
    for (int i = 0; i < partitions; ++i) {
      native.emplace_back(tracker);
    }
  }
}

HadoopEngine::HadoopEngine(const HadoopConfig& config)
    : config_(ValidatedHadoopConfig(config)),
      heap_(std::make_unique<Heap>(HeapConfig{config.engine.execution.heap_bytes, config.engine.execution.gc, 0.55, 0.35, 2})),
      wk_(std::make_unique<WellKnown>(*heap_)),
      kryo_(*heap_),
      inline_serde_(*heap_),
      governor_(config.engine.fault.governor_abort_threshold, config.engine.fault.governor_min_tasks) {
  heap_->set_memory_tracker(&memory_);
  // Worker heaps share the engine's class registry (see TaskScheduler); the
  // engine WellKnown above defines the well-known classes first.
  // Process executors apply to Gerenuk-mode stages only (baseline stages
  // mutate the shared engine heap and run serially in the driver).
  const bool process_mode =
      config.engine.execution.process_executors && config.engine.execution.mode == EngineMode::kGerenuk;
  scheduler_ = std::make_unique<TaskScheduler>(
      config.engine.execution.num_workers, HeapConfig{config.engine.execution.heap_bytes, config.engine.execution.gc, 0.55, 0.35, 2},
      &heap_->klasses(), &memory_, process_mode);
  scheduler_->set_retry_policy(config.engine.retry_policy());
  ExecutorSupervisorConfig supervision;
  supervision.heartbeat_ms = config.engine.execution.executor_heartbeat_ms;
  supervision.heartbeat_timeout_ms = config.engine.execution.executor_heartbeat_timeout_ms;
  supervision.max_executor_relaunches = config.engine.execution.max_executor_relaunches;
  scheduler_->set_supervisor_config(supervision);
  if (config.engine.observability.trace) {
    trace_ = std::make_unique<Trace>(scheduler_->num_workers(), config.engine.observability.trace_buffer_events);
    scheduler_->set_trace(trace_.get());
    // Driver-side GC (sources, baseline phases, Yak epochs) reports into
    // the driver's direct sink.
    heap_->set_trace_sink(trace_->driver());
  }
}

HadoopEngine::~HadoopEngine() = default;

void HadoopEngine::RegisterDataType(const Klass* klass) {
  std::string error;
  GERENUK_CHECK(layouts_.AnalyzeTopLevel(klass, &error)) << error;
  if (!klass->is_array()) {
    const Klass* array = heap_->klasses().DefineArray(FieldKind::kRef, klass);
    GERENUK_CHECK(layouts_.AnalyzeTopLevel(array, &error)) << error;
  }
}

DatasetPtr HadoopEngine::Source(const Klass* klass, int64_t count,
                                const std::function<ObjRef(int64_t, RootScope&)>& make) {
  DatasetPtr ds = MakeSourceDataset(*heap_, inline_serde_, &memory_, config_.engine.execution.mode, klass,
                                    config_.engine.execution.num_partitions, count, make);
  // Seal committed inputs so map tasks verify integrity at stage input.
  for (NativePartition& part : ds->native_parts) {
    part.Seal();
  }
  return ds;
}

void HadoopEngine::ResetMetrics() {
  stats_ = EngineStats{};
  memory_.ResetPeak();
  heap_->ResetStats();
}

MetricsRegistry HadoopEngine::metrics() const {
  MetricsRegistry registry;
  stats_.ExportTo(&registry);
  if (trace_ != nullptr) {
    registry.Merge(trace_->metrics());
  }
  return registry;
}

DatasetPtr HadoopEngine::RunJob(const DatasetPtr& input, const SerProgram& udfs,
                                const Function* map_fn, const Klass* out_klass,
                                const KeySpec& key, const Function* reduce_fn,
                                const Function* combiner_fn) {
  const int reducers = config_.num_reducers;
  // See SparkEngine::CompileStage: the cache is consulted only when the plan
  // compiler is on, and entries carry (transformed, plan) as a unit.
  PlanCache* cache = config_.engine.execution.use_plan_compiler ? plan_cache_ : nullptr;
  const VecSignature vec = VecSignatureOf(config_.engine.execution);
  StagePrograms map_stage =
      CompileNarrowStage(config_.engine.execution.mode, layouts_, input->klass, udfs,
                         {NarrowOp::FlatMap(map_fn, out_klass)}, false, nullptr,
                         &stats_.transform, heap_->klasses(), cache, vec);
  CompiledFunction key_c = CompileSingleFunction(config_.engine.execution.mode, layouts_, udfs,
                                                 key.fn, &stats_.transform, cache, vec);
  CompiledFunction reduce_c =
      CompileSingleFunction(config_.engine.execution.mode, layouts_, udfs, reduce_fn,
                            &stats_.transform, cache, vec);
  CompiledFunction combine_c;
  if (combiner_fn != nullptr) {
    combine_c = CompileSingleFunction(config_.engine.execution.mode, layouts_, udfs,
                                      combiner_fn, &stats_.transform, cache, vec);
  }
  if (config_.engine.execution.mode == EngineMode::kGerenuk &&
      config_.engine.execution.use_plan_compiler) {
    // Transformation may have grown the offset-expression pool; fold before
    // lowering so now-constant expressions become plan immediates.
    pool_.FoldConstants();
    auto stage_plan = [&](StagePrograms* stage) {
      if (stage->cache_hit) {
        stats_.plan_cache_hits += 1;
        return;
      }
      stage->plan = CompilePlan(*stage->transformed, layouts_, plan_options());
      stats_.plans_compiled += 1;
      if (cache != nullptr) {
        cache->Insert(stage->signature, {stage->transformed, stage->plan, nullptr, 0});
      }
    };
    auto fn_plan = [&](CompiledFunction* fn) {
      if (fn->cache_hit) {
        stats_.plan_cache_hits += 1;
        return;
      }
      fn->plan = CompilePlan(*fn->transformed, layouts_, plan_options());
      stats_.plans_compiled += 1;
      if (cache != nullptr) {
        cache->Insert(fn->signature, {fn->transformed, fn->plan, fn->fast_fn, 0});
      }
    };
    stage_plan(&map_stage);
    fn_plan(&key_c);
    fn_plan(&reduce_c);
    if (combiner_fn != nullptr) {
      fn_plan(&combine_c);
    }
  }

  std::vector<Segment> segments;
  ShuffleKey::Hash hasher;

  // -------------------------------------------------------------------------
  // Map phase (with sort/spill/combine)
  // -------------------------------------------------------------------------
  // One map task per input split: chained jobs feed a previous job's output
  // in, whose partition count is the previous reducer count.
  int map_tasks = config_.engine.execution.mode == EngineMode::kBaseline
                      ? static_cast<int>(input->heap_parts.size())
                      : static_cast<int>(input->native_parts.size());

  bool epochs = config_.yak_epochs && config_.engine.execution.mode == EngineMode::kBaseline;
  const int64_t map_base = ClaimTaskOrdinals(map_tasks);
  const FaultPlan* faults = fault_plan_.empty() ? nullptr : &fault_plan_;

  if (config_.engine.execution.mode == EngineMode::kBaseline) {
    TraceSpan map_span(DriverSink(), TraceEventType::kStage, "map");
    scheduler_->RunStageSerial(
        map_tasks,
        [&](WorkerContext& ctx, int task) {
          ctx.stats().map_tasks += 1;
          ctx.stats().tasks_run += 1;
          int64_t shuffle_before = ctx.stats().shuffle_bytes;
          heap_->set_phase_times(&ctx.stats().times);
          if (epochs) {
            heap_->EpochStart();  // Yak: data objects of this task go to a region
          }
          Interpreter interp(*map_stage.original, *heap_, *wk_, &layouts_, nullptr);
          Interpreter key_interp(*key_c.original, *heap_, *wk_, &layouts_, nullptr);
          Interpreter combine_interp(combiner_fn != nullptr ? *combine_c.original
                                                            : *key_c.original,
                                     *heap_, *wk_, &layouts_, nullptr);
          ByteBuffer buffer;
          std::vector<BufferEntry> entries;

          auto spill = [&]() {
            if (entries.empty()) {
              return;
            }
            ctx.stats().spills += 1;
            std::sort(entries.begin(), entries.end(), EntryOrder);
            Segment segment(reducers, &memory_, config_.engine.execution.mode);
            size_t i = 0;
            while (i < entries.size()) {
              size_t j = i + 1;
              while (j < entries.size() && entries[j].part == entries[i].part &&
                     entries[j].key == entries[i].key) {
                ++j;
              }
              int part = entries[i].part;
              ByteBuffer& out = segment.wire[static_cast<size_t>(part)];
              if (combiner_fn != nullptr && j - i > 1) {
                // Combine the run: deserialize, fold, re-serialize (the cost
                // Hadoop pays for map-side combining).
                RootScope scope(*heap_);
                size_t acc = 0;
                for (size_t r = i; r < j; ++r) {
                  ScopedPhase phase(ctx.stats().times, Phase::kDeserialize);
                  ByteReader reader(buffer.data() + entries[r].offset, entries[r].length);
                  size_t rec = scope.Push(kryo_.Deserialize(out_klass, reader));
                  if (r == i) {
                    acc = rec;
                  } else {
                    ctx.stats().combine_calls += 1;
                    Value merged = combine_interp.CallFunction(
                        combine_c.orig_fn,
                        {Value::Ref(static_cast<int64_t>(scope.Get(acc))),
                         Value::Ref(static_cast<int64_t>(scope.Get(rec)))});
                    scope.Set(acc, static_cast<ObjRef>(merged.i));
                  }
                }
                ScopedPhase phase(ctx.stats().times, Phase::kSerialize);
                segment.keys[static_cast<size_t>(part)].push_back(entries[i].key);
                segment.wire_offsets[static_cast<size_t>(part)].push_back(out.size());
                kryo_.Serialize(scope.Get(acc), out_klass, out);
              } else {
                for (size_t r = i; r < j; ++r) {
                  segment.keys[static_cast<size_t>(part)].push_back(entries[r].key);
                  segment.wire_offsets[static_cast<size_t>(part)].push_back(out.size());
                  out.WriteBytes(buffer.data() + entries[r].offset, entries[r].length);
                }
              }
              i = j;
            }
            for (const ByteBuffer& out : segment.wire) {
              ctx.stats().shuffle_bytes += static_cast<int64_t>(out.size());
            }
            segments.push_back(std::move(segment));  // serial stage: task order
            buffer.Clear();
            entries.clear();
          };

          size_t cursor = 0;
          const std::vector<ObjRef>& in_part = input->heap_parts[static_cast<size_t>(task)];
          RecordChannel channel;
          channel.next_heap_record = [&in_part, &cursor]() { return in_part[cursor]; };
          channel.emit_heap_record = [&](ObjRef ref, const Klass* klass) {
            ShuffleKey k = EvalShuffleKey(key_interp, key_c.orig_fn,
                                          Value::Ref(static_cast<int64_t>(ref)), key.is_string);
            int part = static_cast<int>(hasher(k) % static_cast<size_t>(reducers));
            ScopedPhase phase(ctx.stats().times, Phase::kSerialize);
            size_t offset = buffer.size();
            kryo_.Serialize(ref, klass, buffer);
            entries.push_back({part, std::move(k), offset, buffer.size() - offset, 0, 0});
          };
          interp.set_channel(&channel);
          {
            ComputePhaseScope compute(ctx.stats().times);
            for (cursor = 0; cursor < in_part.size(); ++cursor) {
              interp.CallFunction(map_stage.original->body, {});
              if (buffer.size() > config_.sort_buffer_bytes) {
                spill();
              }
            }
            spill();
            if (epochs) {
              heap_->EpochEnd();  // Yak's cleanup(): whole-region reclamation
            }
          }
          heap_->set_phase_times(nullptr);
          if (ctx.trace_sink() != nullptr) {
            ctx.trace_sink()->Counter(TraceEventType::kShuffleBytes, "shuffle_bytes",
                                      ctx.stats().shuffle_bytes - shuffle_before);
          }
        },
        &stats_);
  } else {
    // Gerenuk map phase: native records throughout. Tasks fan out to the
    // worker pool; each task spills into its own segment list (the analogue
    // of per-task map output files), merged in task order at the barrier so
    // the reduce input is identical for every worker count.
    const bool map_speculate = ShouldSpeculateFor(map_stage.signature.hash);
    const int map_aborts_before = stats_.aborts;
    std::vector<std::vector<Segment>> task_segments(static_cast<size_t>(map_tasks));
    // Process-mode wire codec: a map task's output is its ordered segment
    // list — per segment, per reducer partition, the sorted key run
    // ({u8 is_string, i64 i, varlen string}) followed by the partition's
    // native record bytes (self-delimiting trailer). Hadoop's map output
    // stays resident in Segments (the IFile analogue that reducers merge
    // with the key runs alongside the bytes), so it ships whole over the
    // executor channel rather than routing through the spilling ShuffleRun.
    StageCodec map_codec;
    map_codec.encode = [&](int task, ByteBuffer* out) {
      const std::vector<Segment>& list = task_segments[static_cast<size_t>(task)];
      out->WriteU32(static_cast<uint32_t>(list.size()));
      for (const Segment& segment : list) {
        for (int r = 0; r < reducers; ++r) {
          const std::vector<ShuffleKey>& ks = segment.keys[static_cast<size_t>(r)];
          out->WriteU32(static_cast<uint32_t>(ks.size()));
          for (const ShuffleKey& k : ks) {
            out->WriteU8(k.is_string ? 1 : 0);
            out->WriteI64(k.i);
            out->WriteString(k.s);
          }
          segment.native[static_cast<size_t>(r)].SerializeTo(*out);
        }
      }
    };
    map_codec.decode = [&](int task, ByteReader* in) {
      // Fail closed on structural damage: guard every length against the
      // frame's remaining bytes before reading (ByteReader itself aborts on
      // overrun), and reclassify as the non-retryable kCorruptInput.
      auto require = [task](bool ok) {
        if (!ok) {
          throw TaskError(TaskErrorKind::kCorruptInput, task, 1, 0,
                          "map segment wire bytes truncated or over-long");
        }
      };
      // ByteReader::ReadString aborts on an over-long varlen; decode the
      // prefix by hand so a damaged length fails closed instead.
      auto read_string = [&require](ByteReader* in) {
        uint32_t len = 0;
        int shift = 0;
        while (true) {
          require(in->remaining() >= 1);
          uint8_t byte = in->ReadU8();
          len |= static_cast<uint32_t>(byte & 0x7f) << shift;
          if ((byte & 0x80) == 0) {
            break;
          }
          shift += 7;
          require(shift <= 28);
        }
        require(len <= in->remaining());
        std::string s(len, '\0');
        if (len > 0) {
          in->ReadBytes(&s[0], len);
        }
        return s;
      };
      std::vector<Segment>& list = task_segments[static_cast<size_t>(task)];
      list.clear();
      try {
        require(in->remaining() >= 4);
        uint32_t num_segments = in->ReadU32();
        for (uint32_t s = 0; s < num_segments; ++s) {
          require(in->remaining() >= 4);  // a segment is at least one key count
          Segment segment(reducers, &memory_, config_.engine.execution.mode);
          for (int r = 0; r < reducers; ++r) {
            require(in->remaining() >= 4);
            uint32_t num_keys = in->ReadU32();
            // Each key is >= 10 bytes (u8 + i64 + 1-byte varlen).
            require(num_keys <= in->remaining() / 10);
            std::vector<ShuffleKey>& ks = segment.keys[static_cast<size_t>(r)];
            ks.resize(num_keys);
            for (uint32_t k = 0; k < num_keys; ++k) {
              require(in->remaining() >= 10);
              ks[k].is_string = in->ReadU8() != 0;
              ks[k].i = in->ReadI64();
              ks[k].s = read_string(in);
            }
            segment.native[static_cast<size_t>(r)] = NativePartition::Parse(*in, &memory_);
          }
          list.push_back(std::move(segment));
        }
      } catch (const WireFormatError& e) {
        throw TaskError(TaskErrorKind::kCorruptInput, task, 1, 0,
                        std::string("map segment failed wire parse: ") + e.what());
      }
    };
    TraceSpan map_span(DriverSink(), TraceEventType::kStage, "map");
    scheduler_->RunStage(
        map_tasks,
        [&](WorkerContext& ctx, int task) {
          ctx.stats().map_tasks += 1;
          ctx.stats().tasks_run += 1;
          int64_t shuffle_before = ctx.stats().shuffle_bytes;
          std::vector<Segment>& local_segments = task_segments[static_cast<size_t>(task)];
          SerExecutor exec(ctx.heap(), ctx.wk(), layouts_, *map_stage.original,
                           *map_stage.transformed);
          auto region = std::make_unique<NativePartition>(&memory_);  // map output region
          std::vector<BufferEntry> entries;
          bool skip_combiner = false;  // set after an abort (see below)

          auto spill = [&]() {
            if (entries.empty()) {
              return;
            }
            ctx.stats().spills += 1;
            std::sort(entries.begin(), entries.end(), EntryOrder);
            Segment segment(reducers, &memory_, config_.engine.execution.mode);
            BuilderStore builders(layouts_);
            std::unique_ptr<SerRunner> combine_runner = MakeFastRunner(
                combiner_fn != nullptr ? combine_c.plan.get() : key_c.plan.get(),
                combiner_fn != nullptr ? *combine_c.transformed : *key_c.transformed,
                ctx.heap(), ctx.wk(), &layouts_, &builders);
            SerRunner& combine_interp = *combine_runner;
            size_t i = 0;
            while (i < entries.size()) {
              size_t j = i + 1;
              while (j < entries.size() && entries[j].part == entries[i].part &&
                     entries[j].key == entries[i].key) {
                ++j;
              }
              int part = entries[i].part;
              NativePartition& out = segment.native[static_cast<size_t>(part)];
              bool combined = false;
              if (combiner_fn != nullptr && !skip_combiner && j - i > 1) {
                try {
                  int64_t acc = entries[i].addr;
                  for (size_t r = i + 1; r < j; ++r) {
                    ctx.stats().combine_calls += 1;
                    Value merged = combine_interp.CallFunction(
                        combine_c.fast_fn, {Value::Addr(acc), Value::Addr(entries[r].addr)});
                    // Render the intermediate so the next fold reads committed
                    // bytes (the builder is reset per fold).
                    ByteBuffer body;
                    builders.RenderBody(merged.i, out_klass, body);
                    builders.Clear();
                    acc = region->AppendRecord(body.data(), static_cast<uint32_t>(body.size()));
                  }
                  segment.keys[static_cast<size_t>(part)].push_back(entries[i].key);
                  out.AppendRecord(reinterpret_cast<const uint8_t*>(acc),
                                   static_cast<uint32_t>(
                                       MeasureCommittedBody(layouts_, out_klass, acc)));
                  combined = true;
                } catch (const SerAbort& abort) {
                  if (ctx.trace_sink() != nullptr) {
                    ctx.trace_sink()->Instant(TraceEventType::kAbort, "abort",
                                              static_cast<int64_t>(abort.reason));
                  }
                  ctx.stats().aborts += 1;
                  skip_combiner = true;  // keep correctness, drop the optimization
                }
              }
              if (!combined) {
                for (size_t r = i; r < j; ++r) {
                  segment.keys[static_cast<size_t>(part)].push_back(entries[r].key);
                  out.AppendRecord(reinterpret_cast<const uint8_t*>(entries[r].addr),
                                   entries[r].size);
                }
              }
              i = j;
            }
            for (const NativePartition& out : segment.native) {
              ctx.stats().shuffle_bytes += out.bytes_used();
            }
            local_segments.push_back(std::move(segment));
            // Region-based reclamation: the spilled map outputs die wholesale.
            *region = NativePartition(&memory_);
            entries.clear();
          };

          TaskIo io;
          io.input = &input->native_parts[static_cast<size_t>(task)];
          io.stage_label = "map";
          io.partition = task;
          io.task_ordinal = map_base + task;
          io.faults = faults;
          io.attempt = ctx.attempt();
          io.cancelled = [&ctx] { return ctx.cancelled(); };
          io.trace = ctx.trace_sink();
          if (config_.engine.observability.plan_profile_stride > 0) {
            io.plan_profile = &ctx.stats().plan_ops;
            io.plan_profile_stride = config_.engine.observability.plan_profile_stride;
          }
          io.plan = map_stage.plan.get();
          if (key_c.plan != nullptr) {
            io.extra_plans.push_back(key_c.plan.get());
          }
          // Scratch key: extraction reuses the string buffer; the per-entry
          // copy below is unavoidable (entries own their keys), but the
          // extraction-side allocation is saved once the buffer warms up.
          auto scratch_key = std::make_shared<ShuffleKey>();
          io.emit_native = [&, scratch_key](int64_t addr, const Klass* klass, SerRunner& interp,
                                            BuilderStore& builders) {
            if (EvalShuffleKeyInto(interp, key_c.fast_fn, Value::Addr(addr), key.is_string,
                                   scratch_key.get())) {
              ctx.stats().key_allocs_saved += 1;
            }
            const ShuffleKey& k = *scratch_key;
            int part = static_cast<int>(hasher(k) % static_cast<size_t>(reducers));
            int64_t before = region->bytes_used();
            int64_t committed = builders.Render(addr, klass, *region);
            entries.push_back({part, k, 0, 0, committed,
                               static_cast<uint32_t>(region->bytes_used() - before - 4)});
            if (region->bytes_used() > static_cast<int64_t>(config_.sort_buffer_bytes)) {
              spill();
            }
          };
          // Slow path after an abort: records come off the heap but stay in
          // native form for the shuffle. The key interpreter is built once
          // per task (lazily), not once per record.
          auto key_interp = std::make_shared<std::unique_ptr<Interpreter>>();
          io.emit_heap = [&, scratch_key, key_interp](ObjRef ref, const Klass* klass,
                                                      SerRunner& interp) {
            if (!*key_interp) {
              *key_interp = std::make_unique<Interpreter>(*key_c.original, ctx.heap(), ctx.wk(),
                                                          &layouts_, nullptr);
            }
            if (EvalShuffleKeyInto(**key_interp, key_c.orig_fn,
                                   Value::Ref(static_cast<int64_t>(ref)), key.is_string,
                                   scratch_key.get())) {
              ctx.stats().key_allocs_saved += 1;
            }
            const ShuffleKey& k = *scratch_key;
            int part = static_cast<int>(hasher(k) % static_cast<size_t>(reducers));
            ScopedPhase phase(ctx.stats().times, Phase::kSerialize);
            ByteBuffer record;
            ctx.serde().WriteRecord(ref, klass, record);
            int64_t committed =
                region->AppendRecord(record.data() + 4, static_cast<uint32_t>(record.size() - 4));
            entries.push_back({part, k, 0, 0, committed,
                               static_cast<uint32_t>(record.size() - 4)});
            if (region->bytes_used() > static_cast<int64_t>(config_.sort_buffer_bytes)) {
              spill();
            }
          };
          io.on_abort = [&] {
            // Tear down everything this task produced: unspilled entries, the
            // output region, and its already-spilled segments. Sibling tasks'
            // segments live in their own lists and are untouched.
            entries.clear();
            *region = NativePartition(&memory_);
            local_segments.clear();
            skip_combiner = true;
          };
          if (map_speculate) {
            SpecOutcome outcome = exec.RunTaskIo(io, ctx.stats().times);
            {
              ComputePhaseScope compute(ctx.stats().times);
              spill();
            }
            if (!outcome.committed_fast_path) {
              ctx.stats().aborts += outcome.aborts;
            } else {
              ctx.stats().fast_path_commits += 1;
            }
          } else {
            // Governor-degraded: skip speculation, run the original program
            // directly (emits route through the same spill machinery).
            skip_combiner = true;
            exec.RunDirectSlowPath(io, ctx.stats().times);
            {
              ComputePhaseScope compute(ctx.stats().times);
              spill();
            }
            ctx.stats().slow_path_direct += 1;
          }
          if (ctx.trace_sink() != nullptr) {
            ctx.trace_sink()->Counter(TraceEventType::kShuffleBytes, "shuffle_bytes",
                                      ctx.stats().shuffle_bytes - shuffle_before);
          }
        },
        &stats_, &map_codec);
    if (map_speculate) {
      ObserveSpeculation(map_stage.signature.hash, map_tasks, stats_.aborts - map_aborts_before);
    }
    for (auto& list : task_segments) {
      for (Segment& segment : list) {
        segments.push_back(std::move(segment));
      }
    }
  }

  // -------------------------------------------------------------------------
  // Reduce phase (merge + group + fold)
  // -------------------------------------------------------------------------
  auto out = std::make_shared<Dataset>(*heap_, out_klass, reducers, &memory_);
  ClaimTaskOrdinals(reducers);

  // Gathers one reducer's runs from every segment, sorted by key. Segments
  // are complete and read-only by now (the map-stage barrier), so reduce
  // tasks may build this concurrently.
  struct SegRef {
    const Segment* segment;
    size_t index;
  };
  auto build_refs = [&segments](int r) {
    std::vector<SegRef> refs;
    for (const Segment& segment : segments) {
      for (size_t i = 0; i < segment.keys[static_cast<size_t>(r)].size(); ++i) {
        refs.push_back({&segment, i});
      }
    }
    std::sort(refs.begin(), refs.end(), [r](const SegRef& a, const SegRef& b) {
      return a.segment->keys[static_cast<size_t>(r)][a.index] <
             b.segment->keys[static_cast<size_t>(r)][b.index];
    });
    return refs;
  };
  auto key_at = [](const SegRef& ref, int r) -> const ShuffleKey& {
    return ref.segment->keys[static_cast<size_t>(r)][ref.index];
  };

  if (config_.engine.execution.mode == EngineMode::kBaseline) {
    TraceSpan reduce_span(DriverSink(), TraceEventType::kStage, "reduce");
    scheduler_->RunStageSerial(
        reducers,
        [&](WorkerContext& ctx, int r) {
          ctx.stats().reduce_tasks += 1;
          ctx.stats().tasks_run += 1;
          heap_->set_phase_times(&ctx.stats().times);
          std::vector<SegRef> refs = build_refs(r);
          Interpreter reduce_interp(*reduce_c.original, *heap_, *wk_, &layouts_, nullptr);
          if (epochs) {
            heap_->EpochStart();
          }
          {
            ComputePhaseScope compute(ctx.stats().times);
            std::vector<ObjRef>& out_part = out->heap_parts[static_cast<size_t>(r)];
            size_t i = 0;
            while (i < refs.size()) {
              size_t j = i + 1;
              while (j < refs.size() && key_at(refs[j], r) == key_at(refs[i], r)) {
                ++j;
              }
              RootScope scope(*heap_);
              size_t acc = 0;
              for (size_t v = i; v < j; ++v) {
                const Segment& seg = *refs[v].segment;
                size_t idx = refs[v].index;
                ScopedPhase phase(ctx.stats().times, Phase::kDeserialize);
                const ByteBuffer& wire = seg.wire[static_cast<size_t>(r)];
                size_t off = seg.wire_offsets[static_cast<size_t>(r)][idx];
                ByteReader reader(wire.data() + off, wire.size() - off);
                size_t rec = scope.Push(kryo_.Deserialize(out_klass, reader));
                if (v == i) {
                  acc = rec;
                } else {
                  Value merged = reduce_interp.CallFunction(
                      reduce_c.orig_fn, {Value::Ref(static_cast<int64_t>(scope.Get(acc))),
                                         Value::Ref(static_cast<int64_t>(scope.Get(rec)))});
                  scope.Set(acc, static_cast<ObjRef>(merged.i));
                }
              }
              // Final output write ("HDFS"): the baseline serializes once more.
              {
                ScopedPhase phase(ctx.stats().times, Phase::kSerialize);
                ByteBuffer sink;
                kryo_.Serialize(scope.Get(acc), out_klass, sink);
              }
              out_part.push_back(scope.Get(acc));
              i = j;
            }
            if (epochs) {
              heap_->EpochEnd();  // output records escape via out_part's roots
            }
          }
          heap_->set_phase_times(nullptr);
        },
        &stats_);
    return out;
  }

  // Gerenuk reduce: one task per reducer, fanned out to the worker pool.
  const bool reduce_speculate = ShouldSpeculateFor(reduce_c.signature.hash);
  const int reduce_aborts_before = stats_.aborts;
  // Process-mode wire codec: a reduce task commits one sealed output
  // partition; its shuffle-wire bytes (seal included) ship back whole.
  StageCodec reduce_codec;
  reduce_codec.encode = [&out](int task, ByteBuffer* wire) {
    out->native_parts[static_cast<size_t>(task)].SerializeTo(*wire);
  };
  reduce_codec.decode = [this, &out](int task, ByteReader* in) {
    try {
      out->native_parts[static_cast<size_t>(task)] = NativePartition::Parse(*in, &memory_);
    } catch (const WireFormatError& e) {
      throw TaskError(TaskErrorKind::kCorruptInput, task, 1, 0,
                      std::string("reduce output failed wire parse: ") + e.what());
    }
  };
  TraceSpan reduce_span(DriverSink(), TraceEventType::kStage, "reduce");
  scheduler_->RunStage(
      reducers,
      [&](WorkerContext& ctx, int r) {
        ctx.stats().reduce_tasks += 1;
        ctx.stats().tasks_run += 1;
        ctx.heap().set_phase_times(&ctx.stats().times);
        std::vector<SegRef> refs = build_refs(r);
        NativePartition& out_part = out->native_parts[static_cast<size_t>(r)];
        BuilderStore builders(layouts_);
        std::unique_ptr<SerRunner> reduce_runner = MakeFastRunner(
            reduce_c.plan.get(), *reduce_c.transformed, ctx.heap(), ctx.wk(), &layouts_,
            &builders);
        SerRunner& reduce_interp = *reduce_runner;
        Interpreter slow_interp(*reduce_c.original, ctx.heap(), ctx.wk(), &layouts_, nullptr);
        NativePartition scratch(&memory_);
        ComputePhaseScope compute(ctx.stats().times);
        size_t i = 0;
        while (i < refs.size()) {
          size_t j = i + 1;
          while (j < refs.size() && key_at(refs[j], r) == key_at(refs[i], r)) {
            ++j;
          }
          auto addr_of = [r](const SegRef& ref) {
            return ref.segment->native[static_cast<size_t>(r)].record_addr(ref.index);
          };
          auto size_of = [r](const SegRef& ref) {
            return ref.segment->native[static_cast<size_t>(r)].record_size(ref.index);
          };
          bool fast_ok = reduce_speculate;
          if (reduce_speculate) try {
            int64_t acc = addr_of(refs[i]);
            uint32_t acc_size = size_of(refs[i]);
            for (size_t v = i + 1; v < j; ++v) {
              Value merged = reduce_interp.CallFunction(
                  reduce_c.fast_fn, {Value::Addr(acc), Value::Addr(addr_of(refs[v]))});
              ByteBuffer body;
              builders.RenderBody(merged.i, out_klass, body);
              builders.Clear();
              acc = scratch.AppendRecord(body.data(), static_cast<uint32_t>(body.size()));
              acc_size = static_cast<uint32_t>(body.size());
            }
            out_part.AppendRecord(reinterpret_cast<const uint8_t*>(acc), acc_size);
          } catch (const SerAbort& abort) {
            // Re-execute this group on the slow path, inside the same worker.
            if (ctx.trace_sink() != nullptr) {
              ctx.trace_sink()->Instant(TraceEventType::kAbort, "abort",
                                        static_cast<int64_t>(abort.reason));
            }
            ctx.stats().aborts += 1;
            fast_ok = false;
          }
          if (!fast_ok) {
            TraceSpan slow_span(ctx.trace_sink(), TraceEventType::kSlowPath, "slow_path",
                                reduce_speculate ? 0 : 1);
            builders.Clear();
            RootScope scope(ctx.heap());
            size_t acc = 0;
            for (size_t v = i; v < j; ++v) {
              ScopedPhase phase(ctx.stats().times, Phase::kDeserialize);
              ByteReader reader(reinterpret_cast<const uint8_t*>(addr_of(refs[v])),
                                size_of(refs[v]));
              size_t rec = scope.Push(ctx.serde().ReadBody(out_klass, reader));
              if (v == i) {
                acc = rec;
              } else {
                Value merged = slow_interp.CallFunction(
                    reduce_c.orig_fn, {Value::Ref(static_cast<int64_t>(scope.Get(acc))),
                                       Value::Ref(static_cast<int64_t>(scope.Get(rec)))});
                scope.Set(acc, static_cast<ObjRef>(merged.i));
              }
            }
            ScopedPhase phase(ctx.stats().times, Phase::kSerialize);
            ByteBuffer record;
            ctx.serde().WriteRecord(scope.Get(acc), out_klass, record);
            out_part.AppendRecord(record.data() + 4, static_cast<uint32_t>(record.size() - 4));
          }
          i = j;
        }
        if (!reduce_speculate) {
          ctx.stats().slow_path_direct += 1;
        }
        out_part.Seal();
        ctx.heap().set_phase_times(nullptr);
      },
      &stats_, &reduce_codec);
  if (reduce_speculate) {
    ObserveSpeculation(reduce_c.signature.hash, reducers, stats_.aborts - reduce_aborts_before);
  }
  return out;
}

}  // namespace gerenuk
